package core

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/stats"
	"repro/internal/topology"
)

func newTestManager(t *testing.T, spec topology.Spec, eps float64, opts ...ManagerOption) *Manager {
	t.Helper()
	m, err := NewManager(mustTopo(spec), eps, opts...)
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	return m
}

func TestManagerAllocateRelease(t *testing.T) {
	m := newTestManager(t, smallThreeTier(), 0.05)
	req, _ := NewHomogeneous(7, stats.Normal{Mu: 5, Sigma: 2})

	a, err := m.AllocateHomog(req)
	if err != nil {
		t.Fatalf("AllocateHomog: %v", err)
	}
	if got := m.Running(); got != 1 {
		t.Errorf("Running = %d, want 1", got)
	}
	if got := m.FreeSlots(); got != 12-7 {
		t.Errorf("FreeSlots = %d, want 5", got)
	}
	if m.MaxOccupancy() <= 0 {
		t.Error("MaxOccupancy should be positive while a spanning job runs")
	}

	if err := m.Release(a.ID); err != nil {
		t.Fatalf("Release: %v", err)
	}
	if got := m.Running(); got != 0 {
		t.Errorf("Running after release = %d, want 0", got)
	}
	if got := m.FreeSlots(); got != 12 {
		t.Errorf("FreeSlots after release = %d, want 12", got)
	}
	if got := m.MaxOccupancy(); got > 1e-9 {
		t.Errorf("MaxOccupancy after release = %v, want ~0", got)
	}
}

func TestManagerReleaseUnknown(t *testing.T) {
	m := newTestManager(t, smallThreeTier(), 0.05)
	if err := m.Release(42); !errors.Is(err, ErrUnknownJob) {
		t.Errorf("err = %v, want ErrUnknownJob", err)
	}
}

func TestManagerRejectsAndKeepsState(t *testing.T) {
	m := newTestManager(t, smallThreeTier(), 0.05)
	before := m.FreeSlots()
	req, _ := NewHomogeneous(100, stats.Normal{Mu: 5, Sigma: 1})
	if _, err := m.AllocateHomog(req); !errors.Is(err, ErrNoCapacity) {
		t.Fatalf("err = %v, want ErrNoCapacity", err)
	}
	if got := m.FreeSlots(); got != before {
		t.Errorf("FreeSlots changed on rejection: %d -> %d", before, got)
	}
	if got := m.Running(); got != 0 {
		t.Errorf("Running = %d, want 0", got)
	}
}

func TestManagerHeteroAlgorithms(t *testing.T) {
	algos := []HeteroAlgorithm{HeteroSubstring, HeteroExact, HeteroFirstFit}
	for _, algo := range algos {
		m := newTestManager(t, smallThreeTier(), 0.05, WithHeteroAlgorithm(algo))
		req := randHetero(stats.NewRand(uint64(algo)), 5, 1, 8)
		a, err := m.AllocateHetero(req)
		if err != nil {
			t.Fatalf("algo %d: AllocateHetero: %v", algo, err)
		}
		if got := a.Placement.TotalVMs(); got != 5 {
			t.Errorf("algo %d: placed %d VMs, want 5", algo, got)
		}
		if err := m.Release(a.ID); err != nil {
			t.Fatalf("algo %d: Release: %v", algo, err)
		}
	}
}

func TestManagerPolicyOption(t *testing.T) {
	m := newTestManager(t, smallThreeTier(), 0.05, WithPolicy(FirstFeasible))
	if m.policy != FirstFeasible {
		t.Errorf("policy = %v, want FirstFeasible", m.policy)
	}
	if got, want := m.Epsilon(), 0.05; got != want {
		t.Errorf("Epsilon = %v, want %v", got, want)
	}
}

func TestManagerAllocateReleaseChurn(t *testing.T) {
	m := newTestManager(t, smallThreeTier(), 0.05)
	r := stats.NewRand(55)
	var live []JobID
	for round := 0; round < 200; round++ {
		if len(live) > 0 && r.Float64() < 0.45 {
			i := r.IntN(len(live))
			if err := m.Release(live[i]); err != nil {
				t.Fatalf("round %d: Release: %v", round, err)
			}
			live = append(live[:i], live[i+1:]...)
			continue
		}
		req := Homogeneous{
			N:      r.UniformInt(1, 6),
			Demand: stats.Normal{Mu: r.UniformRange(1, 6), Sigma: r.UniformRange(0, 2)},
		}
		a, err := m.AllocateHomog(req)
		if err != nil {
			continue
		}
		live = append(live, a.ID)
		// Invariant: every link stays strictly admissible.
		for _, link := range m.Topology().Links() {
			if occ := m.Ledger().Occupancy(link); occ >= 1 {
				t.Fatalf("round %d: link %d occupancy %v >= 1", round, link, occ)
			}
		}
	}
	for _, id := range live {
		if err := m.Release(id); err != nil {
			t.Fatalf("final Release: %v", err)
		}
	}
	if got := m.FreeSlots(); got != 12 {
		t.Errorf("FreeSlots after full churn = %d, want 12", got)
	}
	if got := m.MaxOccupancy(); got > 1e-6 {
		t.Errorf("MaxOccupancy after full churn = %v, want ~0", got)
	}
}

func TestManagerConcurrentUse(t *testing.T) {
	m := newTestManager(t, smallThreeTier(), 0.05)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			r := stats.NewRand(seed)
			for i := 0; i < 30; i++ {
				req := Homogeneous{N: r.UniformInt(1, 4), Demand: stats.Normal{Mu: 1, Sigma: 0.2}}
				a, err := m.AllocateHomog(req)
				if err != nil {
					continue
				}
				if err := m.Release(a.ID); err != nil {
					t.Errorf("Release: %v", err)
					return
				}
			}
		}(uint64(g))
	}
	wg.Wait()
	if got := m.Running(); got != 0 {
		t.Errorf("Running = %d, want 0", got)
	}
}

func TestManagerDryRun(t *testing.T) {
	m := newTestManager(t, smallThreeTier(), 0.05)
	req, _ := NewHomogeneous(7, stats.Normal{Mu: 5, Sigma: 2})
	if !m.CanAllocateHomog(req) {
		t.Error("CanAllocateHomog = false for a feasible request")
	}
	if got := m.Running(); got != 0 {
		t.Errorf("dry run admitted a job: Running = %d", got)
	}
	if got := m.FreeSlots(); got != 12 {
		t.Errorf("dry run consumed slots: FreeSlots = %d", got)
	}
	big, _ := NewHomogeneous(100, stats.Normal{Mu: 5})
	if m.CanAllocateHomog(big) {
		t.Error("CanAllocateHomog = true for an infeasible request")
	}
	hreq := randHetero(stats.NewRand(77), 4, 1, 8)
	if !m.CanAllocateHetero(hreq) {
		t.Error("CanAllocateHetero = false for a feasible request")
	}
	if got := m.Running(); got != 0 {
		t.Errorf("hetero dry run admitted a job: Running = %d", got)
	}
}

func TestManagerOfflineAndByLevel(t *testing.T) {
	m := newTestManager(t, smallThreeTier(), 0.05)
	machine := m.Topology().Machines()[0]
	m.SetOffline(machine, true)
	if !m.Ledger().Offline(machine) {
		t.Error("SetOffline did not take effect")
	}
	m.SetOffline(machine, false)
	req, _ := NewHomogeneous(4, stats.Normal{Mu: 5, Sigma: 2})
	if _, err := m.AllocateHomog(req); err != nil {
		t.Fatalf("AllocateHomog: %v", err)
	}
	byLevel := m.MaxOccupancyByLevel()
	if len(byLevel) != 2 {
		t.Fatalf("levels = %d, want 2", len(byLevel))
	}
	for lvl, occ := range byLevel {
		if occ < 0 || occ >= 1 {
			t.Errorf("level %d occupancy %v out of range", lvl, occ)
		}
	}
}

func TestHeadroom(t *testing.T) {
	m := newTestManager(t, smallThreeTier(), 0.05)
	req, _ := NewHomogeneous(3, stats.Normal{Mu: 5, Sigma: 2})
	// 12 slots, 3 VMs each, loose bandwidth: 4 copies fit.
	n, err := m.Headroom(req, 0)
	if err != nil {
		t.Fatalf("Headroom: %v", err)
	}
	if n != 4 {
		t.Errorf("Headroom = %d, want 4", n)
	}
	// The exploration must not have touched live state.
	if got := m.FreeSlots(); got != 12 {
		t.Errorf("FreeSlots after Headroom = %d, want 12", got)
	}
	if got := m.Running(); got != 0 {
		t.Errorf("Running after Headroom = %d, want 0", got)
	}
	// A cap is honored.
	if n, err := m.Headroom(req, 2); err != nil || n != 2 {
		t.Errorf("capped Headroom = %d, %v; want 2", n, err)
	}
	// After admitting one for real, headroom shrinks.
	if _, err := m.AllocateHomog(req); err != nil {
		t.Fatalf("AllocateHomog: %v", err)
	}
	if n, err := m.Headroom(req, 0); err != nil || n != 3 {
		t.Errorf("Headroom after admission = %d, %v; want 3", n, err)
	}
	if _, err := m.Headroom(Homogeneous{N: 0}, 0); err == nil {
		t.Error("invalid request accepted")
	}
}

func TestLedgerClone(t *testing.T) {
	led := newTestLedger(t, fig3Topology(t), 0.05)
	link := led.Topology().Machines()[0]
	led.AddDet(link, 10)
	led.UseSlots(link, 2)
	clone := led.Clone()
	clone.AddDet(link, 20)
	clone.UseSlots(link, 1)
	if got := led.Occupancy(link); got != 0.2 {
		t.Errorf("original occupancy changed: %v", got)
	}
	if got := led.FreeSlots(link); got != 3 {
		t.Errorf("original slots changed: %d", got)
	}
	if got := clone.Occupancy(link); got != 0.6 {
		t.Errorf("clone occupancy = %v, want 0.6", got)
	}
}
