package core

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/stats"
	"repro/internal/topology"
)

// ManagerState is a complete, serializable snapshot of a Manager's
// mutable state: the ledger's per-link reservations and slot usage, the
// admitted jobs with their exact committed contributions, the fault
// overlay, the fault/repair counters, and the idempotency table.
//
// Float64 fields round-trip bit-exactly through encoding/json (Go
// marshals the shortest representation that parses back to the same
// bits), so a snapshot restored with NewManagerFromState reproduces the
// ledger bit-identically. Repair latency telemetry is deliberately not
// part of the state — it is timing, not state, and resets on restart.
type ManagerState struct {
	NextID       int64                `json:"next_id"`
	Links        []LinkRecord         `json:"links"`
	Used         []int                `json:"used"`
	Jobs         []JobState           `json:"jobs,omitempty"`
	MachinesDown []int                `json:"machines_down,omitempty"`
	LinksDown    []int                `json:"links_down,omitempty"`
	Counters     CounterState         `json:"counters"`
	Idem         map[string]IdemState `json:"idem,omitempty"`
}

// LinkRecord is one link's reservation bookkeeping (capacity comes from
// the immutable topology, not the state).
type LinkRecord struct {
	Det        float64 `json:"det,omitempty"`
	SumMu      float64 `json:"sum_mu,omitempty"`
	SumVar     float64 `json:"sum_var,omitempty"`
	Stochastic int     `json:"stochastic,omitempty"`
}

// JobState is one admitted job: its request, committed placement, the
// exact per-link contributions, and the weakened risk factor if a
// degraded repair applies.
type JobState struct {
	ID          int64          `json:"id"`
	Homog       *HomogSpec     `json:"homog,omitempty"`
	Hetero      []DemandSpec   `json:"hetero,omitempty"`
	Placement   []EntryState   `json:"placement"`
	Contribs    []Contribution `json:"contribs,omitempty"`
	DegradedEps *float64       `json:"degraded_eps,omitempty"`
}

// HomogSpec is the wire form of a homogeneous request.
type HomogSpec struct {
	N     int     `json:"n"`
	Mu    float64 `json:"mu,omitempty"`
	Sigma float64 `json:"sigma,omitempty"`
}

// Request rebuilds the validated homogeneous request.
func (h HomogSpec) Request() (Homogeneous, error) {
	return NewHomogeneous(h.N, stats.Normal{Mu: h.Mu, Sigma: h.Sigma})
}

// HomogSpecOf converts a request to its wire form.
func HomogSpecOf(r Homogeneous) HomogSpec {
	return HomogSpec{N: r.N, Mu: r.Demand.Mu, Sigma: r.Demand.Sigma}
}

// DemandSpec is one VM's demand distribution on the wire.
type DemandSpec struct {
	Mu    float64 `json:"mu,omitempty"`
	Sigma float64 `json:"sigma,omitempty"`
}

// HeteroRequest rebuilds a validated heterogeneous request from per-VM specs.
func HeteroRequest(ds []DemandSpec) (Heterogeneous, error) {
	demands := make([]stats.Normal, len(ds))
	for i, d := range ds {
		demands[i] = stats.Normal{Mu: d.Mu, Sigma: d.Sigma}
	}
	return NewHeterogeneous(demands)
}

// HeteroSpecOf converts a heterogeneous request to its wire form.
func HeteroSpecOf(r Heterogeneous) []DemandSpec {
	ds := make([]DemandSpec, len(r.Demands))
	for i, d := range r.Demands {
		ds[i] = DemandSpec{Mu: d.Mu, Sigma: d.Sigma}
	}
	return ds
}

// EntryState is one machine's share of a placement on the wire.
type EntryState struct {
	Machine int   `json:"machine"`
	Count   int   `json:"count"`
	VMs     []int `json:"vms,omitempty"`
}

// ExportPlacement converts a placement to its wire form.
func ExportPlacement(p *Placement) []EntryState {
	out := make([]EntryState, len(p.Entries))
	for i, e := range p.Entries {
		out[i] = EntryState{Machine: int(e.Machine), Count: e.Count}
		if e.VMs != nil {
			out[i].VMs = append([]int(nil), e.VMs...)
		}
	}
	return out
}

// ImportPlacement converts a wire placement back to the core form.
func ImportPlacement(es []EntryState) Placement {
	p := Placement{Entries: make([]PlacementEntry, len(es))}
	for i, e := range es {
		p.Entries[i] = PlacementEntry{Machine: topology.NodeID(e.Machine), Count: e.Count}
		if e.VMs != nil {
			p.Entries[i].VMs = append([]int(nil), e.VMs...)
		}
	}
	return p
}

// CounterState is the deterministic part of the fault/repair counters.
type CounterState struct {
	MachineFailures uint64 `json:"machine_failures,omitempty"`
	MachineRestores uint64 `json:"machine_restores,omitempty"`
	LinkFailures    uint64 `json:"link_failures,omitempty"`
	LinkRestores    uint64 `json:"link_restores,omitempty"`
	NoopRepairs     uint64 `json:"noop_repairs,omitempty"`
	MovedRepairs    uint64 `json:"moved_repairs,omitempty"`
	DegradedRepairs uint64 `json:"degraded_repairs,omitempty"`
	FailedRepairs   uint64 `json:"failed_repairs,omitempty"`
}

// IdemState is one idempotency-key binding on the wire.
type IdemState struct {
	Op        MutationOp   `json:"op"`
	Job       int64        `json:"job,omitempty"`
	Placement []EntryState `json:"placement,omitempty"`
}

// ExportState returns a deep snapshot of the manager's full mutable
// state, suitable for journal checkpoints and for differential
// comparison in tests. Jobs are sorted by ID and contributions by link,
// so two managers that executed the same operations export equal states.
func (m *Manager) ExportState() *ManagerState {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.exportStateLocked()
}

func (m *Manager) exportStateLocked() *ManagerState {
	topo := m.led.Topology()
	st := &ManagerState{
		NextID: int64(m.nextID),
		Links:  make([]LinkRecord, len(m.led.links)),
		Used:   append([]int(nil), m.led.used...),
		Counters: CounterState{
			MachineFailures: m.fstats.machineFailures,
			MachineRestores: m.fstats.machineRestores,
			LinkFailures:    m.fstats.linkFailures,
			LinkRestores:    m.fstats.linkRestores,
			NoopRepairs:     m.fstats.noopRepairs,
			MovedRepairs:    m.fstats.movedRepairs,
			DegradedRepairs: m.fstats.degradedRepairs,
			FailedRepairs:   m.fstats.failedRepairs,
		},
	}
	for i, s := range m.led.links {
		st.Links[i] = LinkRecord{Det: s.det, SumMu: s.sumMu, SumVar: s.sumVar, Stochastic: s.stochastic}
	}

	ids := make([]JobID, 0, len(m.jobs))
	for id := range m.jobs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		a := m.jobs[id]
		js := JobState{
			ID:        int64(id),
			Placement: ExportPlacement(&a.Placement),
			Contribs:  exportContribs(a.contribs),
		}
		sortContribs(js.Contribs)
		if a.homog != nil {
			h := HomogSpecOf(*a.homog)
			js.Homog = &h
		}
		if a.hetero != nil {
			js.Hetero = HeteroSpecOf(*a.hetero)
		}
		if eps, ok := m.degraded[id]; ok {
			e := eps
			js.DegradedEps = &e
		}
		st.Jobs = append(st.Jobs, js)
	}

	f := m.led.Faults()
	for _, mc := range topo.Machines() {
		if f.MachineDown(mc) {
			st.MachinesDown = append(st.MachinesDown, int(mc))
		}
	}
	for _, l := range topo.Links() {
		if f.LinkDown(l) {
			st.LinksDown = append(st.LinksDown, int(l))
		}
	}

	if len(m.idem) > 0 {
		st.Idem = make(map[string]IdemState, len(m.idem))
		for k, e := range m.idem {
			is := IdemState{Op: e.op, Job: int64(e.job)}
			if e.op == OpAlloc {
				is.Placement = ExportPlacement(&e.placement)
			}
			st.Idem[k] = is
		}
	}
	return st
}

// sortContribs orders contributions by link so exports compare
// deterministically (each link appears at most once per job).
func sortContribs(cs []Contribution) {
	sort.Slice(cs, func(i, j int) bool { return cs[i].Link < cs[j].Link })
}

// NewManagerFromState rebuilds a manager over the topology from a
// state snapshot, restoring the ledger's reservation bookkeeping
// bit-identically. The snapshot is validated structurally (index ranges,
// slot bounds, job/slot consistency) so a corrupt snapshot yields an
// error rather than a manager that panics later.
func NewManagerFromState(topo *topology.Topology, eps float64, st *ManagerState, opts ...ManagerOption) (*Manager, error) {
	m, err := NewManager(topo, eps, opts...)
	if err != nil {
		return nil, err
	}
	if st == nil {
		return m, nil
	}
	if len(st.Links) != topo.Len() || len(st.Used) != topo.Len() {
		return nil, fmt.Errorf("core: state has %d links / %d used entries, topology has %d nodes",
			len(st.Links), len(st.Used), topo.Len())
	}
	for i, s := range st.Links {
		if s.Stochastic < 0 || s.Det < 0 || s.SumMu < 0 || s.SumVar < 0 ||
			math.IsNaN(s.Det+s.SumMu+s.SumVar) || math.IsInf(s.Det+s.SumMu+s.SumVar, 0) {
			return nil, fmt.Errorf("core: link %d has invalid reservation state %+v", i, s)
		}
		m.led.links[i].det = s.Det
		m.led.links[i].sumMu = s.SumMu
		m.led.links[i].sumVar = s.SumVar
		m.led.links[i].stochastic = s.Stochastic
	}
	for i, u := range st.Used {
		n := topo.Node(topology.NodeID(i))
		if u < 0 || (!n.IsMachine() && u != 0) || u > n.Slots {
			return nil, fmt.Errorf("core: node %d has invalid used slots %d", i, u)
		}
		m.led.used[i] = u
	}

	for _, mc := range st.MachinesDown {
		id := topology.NodeID(mc)
		if id < 0 || int(id) >= topo.Len() || !topo.Node(id).IsMachine() {
			return nil, fmt.Errorf("core: failed node %d is not a machine", mc)
		}
		m.led.Faults().FailMachine(id)
	}
	for _, l := range st.LinksDown {
		id := topology.LinkID(l)
		if id < 0 || int(id) >= topo.Len() || topo.Node(topology.NodeID(id)).Parent == topology.None {
			return nil, fmt.Errorf("core: failed node %d has no uplink", l)
		}
		m.led.Faults().FailLink(id)
	}

	perMachine := make([]int, topo.Len())
	for _, js := range st.Jobs {
		id := JobID(js.ID)
		if id <= 0 || id > JobID(st.NextID) {
			return nil, fmt.Errorf("core: job id %d outside (0, %d]", js.ID, st.NextID)
		}
		if _, ok := m.jobs[id]; ok {
			return nil, fmt.Errorf("core: duplicate job id %d", js.ID)
		}
		a := &Allocation{ID: id, Placement: ImportPlacement(js.Placement), contribs: importContribs(js.Contribs)}
		switch {
		case js.Homog != nil && js.Hetero == nil:
			req, err := js.Homog.Request()
			if err != nil {
				return nil, fmt.Errorf("core: job %d: %w", js.ID, err)
			}
			a.homog = &req
		case js.Hetero != nil && js.Homog == nil:
			req, err := HeteroRequest(js.Hetero)
			if err != nil {
				return nil, fmt.Errorf("core: job %d: %w", js.ID, err)
			}
			a.hetero = &req
		default:
			return nil, fmt.Errorf("core: job %d must carry exactly one request kind", js.ID)
		}
		for _, e := range a.Placement.Entries {
			if e.Machine < 0 || int(e.Machine) >= topo.Len() || !topo.Node(e.Machine).IsMachine() || e.Count <= 0 {
				return nil, fmt.Errorf("core: job %d has invalid placement entry on node %d", js.ID, e.Machine)
			}
			perMachine[e.Machine] += e.Count
		}
		for _, c := range a.contribs {
			if c.link < 0 || int(c.link) >= topo.Len() {
				return nil, fmt.Errorf("core: job %d contribution on invalid link %d", js.ID, c.link)
			}
		}
		if js.DegradedEps != nil {
			m.degraded[id] = *js.DegradedEps
		}
		m.jobs[id] = a
	}
	// Slot usage must equal the jobs' placements exactly, or a later
	// release would underflow the ledger.
	for i, want := range perMachine {
		if st.Used[i] != want {
			return nil, fmt.Errorf("core: machine %d uses %d slots but jobs place %d", i, st.Used[i], want)
		}
	}

	m.nextID = JobID(st.NextID)
	m.fstats.machineFailures = st.Counters.MachineFailures
	m.fstats.machineRestores = st.Counters.MachineRestores
	m.fstats.linkFailures = st.Counters.LinkFailures
	m.fstats.linkRestores = st.Counters.LinkRestores
	m.fstats.noopRepairs = st.Counters.NoopRepairs
	m.fstats.movedRepairs = st.Counters.MovedRepairs
	m.fstats.degradedRepairs = st.Counters.DegradedRepairs
	m.fstats.failedRepairs = st.Counters.FailedRepairs

	for k, is := range st.Idem {
		e := idemEntry{op: is.Op, job: JobID(is.Job)}
		if is.Op == OpAlloc {
			e.placement = ImportPlacement(is.Placement)
		}
		m.idem[k] = e
	}
	return m, nil
}
