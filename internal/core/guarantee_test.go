package core

import (
	"testing"

	"repro/internal/stats"
	"repro/internal/topology"
)

// TestProbabilisticGuaranteeMonteCarlo validates the framework end to end:
// pack a link with admitted SVC demands under eps, then draw per-VM demands
// and measure how often the realized crossing traffic exceeds the stochastic
// sharing bandwidth. The empirical outage probability must stay near (and,
// for the normal model, at most about) eps.
//
// The realized crossing traffic of one virtual cluster is
// min(sum inside-VM demands, sum outside-VM demands) — exactly the quantity
// whose moment-matched distribution the ledger reserves.
func TestProbabilisticGuaranteeMonteCarlo(t *testing.T) {
	const (
		eps     = 0.10
		samples = 30000
	)
	tp := mustTopo(topology.Spec{Children: []topology.Spec{
		{UpCap: 2000, Slots: 64},
		{UpCap: 2000, Slots: 64},
	}})
	led := newTestLedger(t, tp, eps)
	link := tp.Machines()[0]

	// Admit crossing demands for 8-VM jobs split 3/5 until the admission
	// condition stops us. Track each job's split so the simulation can
	// redraw its VM demands.
	type job struct {
		demand stats.Normal
		m, n   int
	}
	profile := stats.Normal{Mu: 60, Sigma: 30}
	var jobs []job
	for {
		d := CrossingHomog(profile, 3, 8)
		if led.OccupancyWith(link, d) >= 1 {
			break
		}
		led.AddStochastic(link, d)
		jobs = append(jobs, job{demand: profile, m: 3, n: 8})
	}
	if len(jobs) < 3 {
		t.Fatalf("admitted only %d jobs; test needs statistical multiplexing to engage", len(jobs))
	}

	r := stats.NewRand(20140707)
	capacity := tp.LinkCap(link) // S_L = C_L here (no deterministic load)
	outages := 0
	for s := 0; s < samples; s++ {
		var total float64
		for _, j := range jobs {
			var inside, outside float64
			for v := 0; v < j.m; v++ {
				inside += r.Normal(j.demand)
			}
			for v := 0; v < j.n-j.m; v++ {
				outside += r.Normal(j.demand)
			}
			if outside < inside {
				inside = outside
			}
			if inside > 0 {
				total += inside
			}
		}
		if total > capacity {
			outages++
		}
	}
	got := float64(outages) / samples
	// The reservation uses a moment-matched normal for the min-of-sums,
	// which is slightly conservative in the upper tail; allow eps plus a
	// small Monte Carlo margin.
	if got > eps+0.03 {
		t.Errorf("empirical outage probability %.4f exceeds eps %.2f", got, eps)
	}
	if got == 0 {
		t.Error("outage probability 0: the link is not actually near its admission boundary")
	}
	t.Logf("admitted %d jobs; empirical outage probability %.4f (eps %.2f)", len(jobs), got, eps)
}

// TestGuaranteeTightensWithSmallerEps: a stricter risk factor admits fewer
// demands on the same link.
func TestGuaranteeTightensWithSmallerEps(t *testing.T) {
	tp := mustTopo(topology.Spec{Children: []topology.Spec{
		{UpCap: 2000, Slots: 64},
		{UpCap: 2000, Slots: 64},
	}})
	link := tp.Machines()[0]
	admit := func(eps float64) int {
		led := newTestLedger(t, tp, eps)
		profile := stats.Normal{Mu: 60, Sigma: 30}
		d := CrossingHomog(profile, 3, 8)
		k := 0
		for led.OccupancyWith(link, d) < 1 {
			led.AddStochastic(link, d)
			k++
		}
		return k
	}
	loose, strict := admit(0.10), admit(0.02)
	if strict >= loose {
		t.Errorf("eps=0.02 admitted %d, eps=0.10 admitted %d; want strictly fewer", strict, loose)
	}
}
