package core

import (
	"errors"
	"math"
	"testing"

	"repro/internal/stats"
	"repro/internal/topology"
)

func mustManager(t *testing.T, spec topology.Spec, eps float64, opts ...ManagerOption) *Manager {
	t.Helper()
	m, err := NewManager(mustTopo(spec), eps, opts...)
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	return m
}

func mustAllocHomog(t *testing.T, m *Manager, req Homogeneous) *Allocation {
	t.Helper()
	a, err := m.AllocateHomog(req)
	if err != nil {
		t.Fatalf("AllocateHomog(%v): %v", req, err)
	}
	return a
}

// machineWithCap finds the machine whose host link has the given capacity.
func machineWithCap(tp *topology.Topology, cap float64) topology.NodeID {
	for _, m := range tp.Machines() {
		if tp.LinkCap(m) == cap {
			return m
		}
	}
	panic("no machine with that uplink capacity")
}

// TestRepairNoopOnUnaffectedJob is the acceptance criterion's identity
// check: repairing a job that lost nothing returns the exact placement.
func TestRepairNoopOnUnaffectedJob(t *testing.T) {
	m := mustManager(t, smallThreeTier(), 0.05)
	a := mustAllocHomog(t, m, Homogeneous{N: 3, Demand: stats.Normal{Mu: 5, Sigma: 2}})
	before := a.Placement.String()

	// Fail a machine the job does not use.
	used := make(map[topology.NodeID]bool)
	for _, e := range a.Placement.Entries {
		used[e.Machine] = true
	}
	var victim topology.NodeID = topology.None
	for _, mc := range m.Topology().Machines() {
		if !used[mc] {
			victim = mc
			break
		}
	}
	if victim == topology.None {
		t.Fatal("test topology too small: no unused machine")
	}
	if affected, _ := m.FailMachine(victim); len(affected) != 0 {
		t.Fatalf("FailMachine of an unused machine displaced jobs %v", affected)
	}

	res, err := m.RepairJob(a.ID)
	if err != nil {
		t.Fatalf("RepairJob: %v", err)
	}
	if res.Outcome != RepairNoop || res.MovedVMs != 0 {
		t.Fatalf("got outcome %v moved %d, want noop/0", res.Outcome, res.MovedVMs)
	}
	if got := res.Placement.String(); got != before {
		t.Fatalf("noop repair changed placement:\n got %s\nwant %s", got, before)
	}
	if res.EffectiveEps != m.Epsilon() {
		t.Fatalf("noop EffectiveEps = %v, want %v", res.EffectiveEps, m.Epsilon())
	}
	if st := m.FailureStats(); st.NoopRepairs != 1 || st.MachineFailures != 1 || st.MachinesDown != 1 {
		t.Fatalf("unexpected stats %+v", st)
	}
}

// TestRepairMovedPreservesGuarantee: a machine failure displaces part of a
// job; the pinned DP re-places only the displaced VMs, keeps survivors in
// place, and the original admission condition holds on every live link.
func TestRepairMovedPreservesGuarantee(t *testing.T) {
	m := mustManager(t, smallThreeTier(), 0.05)
	// 4 VMs over 3-slot machines: the placement must span two machines.
	a := mustAllocHomog(t, m, Homogeneous{N: 4, Demand: stats.Normal{Mu: 4, Sigma: 2}})
	if len(a.Placement.Entries) < 2 {
		t.Fatalf("expected a spread placement, got %v", &a.Placement)
	}
	victim := a.Placement.Entries[0].Machine
	survivors := make(map[topology.NodeID]int)
	displaced := 0
	for _, e := range a.Placement.Entries {
		if e.Machine == victim {
			displaced = e.Count
		} else {
			survivors[e.Machine] = e.Count
		}
	}

	affected, _ := m.FailMachine(victim)
	if len(affected) != 1 || affected[0] != a.ID {
		t.Fatalf("AffectedJobs = %v, want [%d]", affected, a.ID)
	}
	res, err := m.RepairJob(a.ID)
	if err != nil {
		t.Fatalf("RepairJob: %v", err)
	}
	if res.Outcome != RepairMoved {
		t.Fatalf("outcome = %v, want moved", res.Outcome)
	}
	if res.MovedVMs != displaced {
		t.Fatalf("MovedVMs = %d, want %d", res.MovedVMs, displaced)
	}
	if res.EffectiveEps != m.Epsilon() {
		t.Fatalf("EffectiveEps = %v, want base eps %v", res.EffectiveEps, m.Epsilon())
	}
	counts := placementCounts(&res.Placement)
	for mc, c := range survivors {
		if counts[mc] < c {
			t.Fatalf("survivor machine %d dropped from %d to %d VMs", mc, c, counts[mc])
		}
	}
	if counts[victim] != 0 {
		t.Fatalf("repair left %d VMs on the failed machine", counts[victim])
	}
	if res.Placement.TotalVMs() != 4 {
		t.Fatalf("repaired placement has %d VMs, want 4", res.Placement.TotalVMs())
	}
	led := m.Ledger()
	for _, link := range m.Topology().Links() {
		if led.LinkLive(link) && led.Occupancy(link) >= 1 {
			t.Fatalf("live link %d at occupancy %v >= 1 after strict repair", link, led.Occupancy(link))
		}
	}
	if eps, err := m.EffectiveEps(a.ID); err != nil || eps != m.Epsilon() {
		t.Fatalf("EffectiveEps(job) = %v, %v; want base eps", eps, err)
	}
	// Releasing the repaired job must restore a clean ledger.
	if err := m.Release(a.ID); err != nil {
		t.Fatalf("Release: %v", err)
	}
	for _, link := range m.Topology().Links() {
		if occ := led.Occupancy(link); occ != 0 {
			t.Fatalf("link %d occupancy %v != 0 after release", link, occ)
		}
	}
}

// TestRepairLinkFailureMovesAcrossRacks: failing a rack uplink strands the
// rack's machines; the displaced VMs must land in the other rack.
func TestRepairLinkFailureMovesAcrossRacks(t *testing.T) {
	m := mustManager(t, smallThreeTier(), 0.05)
	a := mustAllocHomog(t, m, Homogeneous{N: 4, Demand: stats.Normal{Mu: 4, Sigma: 2}})
	tp := m.Topology()
	// The job sits inside one rack (4 VMs fit in 2x3 slots); fail that
	// rack's uplink.
	rack := enclosingSubtree(tp, &a.Placement)
	if tp.Node(rack).Level != 1 {
		t.Fatalf("expected a rack-level placement, got level %d", tp.Node(rack).Level)
	}
	affected, _ := m.FailLink(rack)
	if len(affected) != 1 || affected[0] != a.ID {
		t.Fatalf("AffectedJobs after link failure = %v, want [%d]", affected, a.ID)
	}
	res, err := m.RepairJob(a.ID)
	if err != nil {
		t.Fatalf("RepairJob: %v", err)
	}
	if res.Outcome != RepairMoved || res.MovedVMs != 4 {
		t.Fatalf("outcome %v moved %d, want moved/4", res.Outcome, res.MovedVMs)
	}
	for _, e := range res.Placement.Entries {
		if isAncestor(tp, rack, e.Machine) {
			t.Fatalf("repair placed VMs on machine %d behind the failed uplink", e.Machine)
		}
	}
	if st := m.FailureStats(); st.LinkFailures != 1 || st.MovedRepairs != 1 || st.LinksDown != 1 {
		t.Fatalf("unexpected stats %+v", st)
	}
}

// asymmetricSpec: three machines under the root with host link capacities
// 50, 50 and 30 and two slots each — the 30-capacity machine cannot carry
// a strict repair of the test job, forcing the degradation path.
func asymmetricSpec() topology.Spec {
	return topology.Spec{Children: []topology.Spec{
		{UpCap: 50, Slots: 2},
		{UpCap: 50, Slots: 2},
		{UpCap: 30, Slots: 2},
	}}
}

// TestRepairDegradedReportsWeakenedEps: when no guarantee-preserving
// placement exists but slots do, the job is re-placed with the admission
// condition relaxed and its honest effective eps (worst per-link outage
// probability) is reported and recorded.
func TestRepairDegradedReportsWeakenedEps(t *testing.T) {
	const eps = 0.05
	m := mustManager(t, asymmetricSpec(), eps)
	tp := m.Topology()
	weak := machineWithCap(tp, 30)

	// CrossingHomog({20,5}, 2, 4) has effective bandwidth ~46: admissible
	// on the 50-links, not on the 30-link.
	a := mustAllocHomog(t, m, Homogeneous{N: 4, Demand: stats.Normal{Mu: 20, Sigma: 5}})
	counts := placementCounts(&a.Placement)
	if counts[weak] != 0 {
		t.Fatalf("setup broken: initial placement %v uses the weak machine", &a.Placement)
	}
	victim := a.Placement.Entries[0].Machine
	m.FailMachine(victim)

	res, err := m.RepairJob(a.ID)
	if err != nil {
		t.Fatalf("RepairJob: %v", err)
	}
	if res.Outcome != RepairDegraded {
		t.Fatalf("outcome = %v, want degraded", res.Outcome)
	}
	if res.Placement.TotalVMs() != 4 {
		t.Fatalf("degraded placement has %d VMs, want 4", res.Placement.TotalVMs())
	}
	if got := placementCounts(&res.Placement)[weak]; got != 2 {
		t.Fatalf("weak machine carries %d VMs, want 2", got)
	}
	if res.EffectiveEps <= eps {
		t.Fatalf("EffectiveEps = %v, want > eps %v", res.EffectiveEps, eps)
	}
	// The weak link's occupancy really is over 1 now; the weakened eps
	// must equal the worst per-link outage probability.
	led := m.Ledger()
	if occ := led.Occupancy(weak); occ < 1 {
		t.Fatalf("weak link occupancy %v < 1; degradation did not engage", occ)
	}
	if p := led.LinkOutageProb(weak); math.Abs(p-res.EffectiveEps) > 1e-12 {
		t.Fatalf("EffectiveEps %v != weak-link outage prob %v", res.EffectiveEps, p)
	}
	if got, err := m.EffectiveEps(a.ID); err != nil || got != res.EffectiveEps {
		t.Fatalf("EffectiveEps(job) = %v, %v", got, err)
	}
	st := m.FailureStats()
	if st.DegradedRepairs != 1 || st.DegradedJobs != 1 {
		t.Fatalf("unexpected stats %+v", st)
	}
	// A follow-up repair with nothing newly displaced is a noop that keeps
	// reporting the weakened eps.
	res2, err := m.RepairJob(a.ID)
	if err != nil {
		t.Fatalf("second RepairJob: %v", err)
	}
	if res2.Outcome != RepairNoop || res2.EffectiveEps != res.EffectiveEps {
		t.Fatalf("second repair: outcome %v eps %v, want noop with sticky eps %v",
			res2.Outcome, res2.EffectiveEps, res.EffectiveEps)
	}
	// Releasing the degraded job clears its degraded mark.
	if err := m.Release(a.ID); err != nil {
		t.Fatalf("Release: %v", err)
	}
	if st := m.FailureStats(); st.DegradedJobs != 0 {
		t.Fatalf("DegradedJobs = %d after release, want 0", st.DegradedJobs)
	}
}

// TestRepairFailedEvictsJob: when not even a relaxed placement fits, the
// job is evicted and every reservation freed.
func TestRepairFailedEvictsJob(t *testing.T) {
	spec := topology.Spec{Children: []topology.Spec{
		{UpCap: 100, Slots: 2},
		{UpCap: 100, Slots: 2},
	}}
	m := mustManager(t, spec, 0.05)
	a := mustAllocHomog(t, m, Homogeneous{N: 4, Demand: stats.Normal{Mu: 10, Sigma: 3}})
	victim := a.Placement.Entries[0].Machine
	m.FailMachine(victim)

	res, err := m.RepairJob(a.ID)
	if err != nil {
		t.Fatalf("RepairJob: %v", err)
	}
	if res.Outcome != RepairFailed || res.EffectiveEps != 1 {
		t.Fatalf("got outcome %v eps %v, want failed/1", res.Outcome, res.EffectiveEps)
	}
	if m.Running() != 0 {
		t.Fatalf("Running = %d after eviction, want 0", m.Running())
	}
	if _, err := m.EffectiveEps(a.ID); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("EffectiveEps after eviction: %v, want ErrUnknownJob", err)
	}
	if _, err := m.RepairJob(a.ID); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("RepairJob after eviction: %v, want ErrUnknownJob", err)
	}
	led := m.Ledger()
	for _, link := range m.Topology().Links() {
		if occ := led.Occupancy(link); occ != 0 {
			t.Fatalf("link %d occupancy %v != 0 after eviction", link, occ)
		}
	}
	m.RestoreMachine(victim)
	if got, want := m.FreeSlots(), 4; got != want {
		t.Fatalf("FreeSlots = %d after restore, want %d", got, want)
	}
	st := m.FailureStats()
	if st.FailedRepairs != 1 || st.MachineRestores != 1 || st.MachinesDown != 0 {
		t.Fatalf("unexpected stats %+v", st)
	}
}

// TestRepairHeteroFullReallocation: heterogeneous jobs have no pinned DP;
// repair re-allocates the whole job strictly or evicts it.
func TestRepairHeteroFullReallocation(t *testing.T) {
	m := mustManager(t, smallThreeTier(), 0.05)
	req, err := NewHeterogeneous([]stats.Normal{
		{Mu: 4, Sigma: 2}, {Mu: 6, Sigma: 1}, {Mu: 3, Sigma: 3}, {Mu: 5, Sigma: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	a, err := m.AllocateHetero(req)
	if err != nil {
		t.Fatalf("AllocateHetero: %v", err)
	}
	victim := a.Placement.Entries[0].Machine
	displaced := a.Placement.Entries[0].Count
	m.FailMachine(victim)
	res, err := m.RepairJob(a.ID)
	if err != nil {
		t.Fatalf("RepairJob: %v", err)
	}
	if res.Outcome != RepairMoved || res.MovedVMs != displaced {
		t.Fatalf("outcome %v moved %d, want moved/%d", res.Outcome, res.MovedVMs, displaced)
	}
	if res.Placement.TotalVMs() != 4 {
		t.Fatalf("repaired hetero placement has %d VMs, want 4", res.Placement.TotalVMs())
	}
	for _, e := range res.Placement.Entries {
		if e.Machine == victim {
			t.Fatal("repair placed VMs on the failed machine")
		}
		if len(e.VMs) != e.Count {
			t.Fatalf("hetero entry on machine %d lists %d VMs for count %d", e.Machine, len(e.VMs), e.Count)
		}
	}
}

// TestRepairAllRepairsEveryAffectedJob exercises the batch path.
func TestRepairAllRepairsEveryAffectedJob(t *testing.T) {
	m := mustManager(t, smallThreeTier(), 0.05)
	// Two 2-VM jobs on separate machines plus slack to repair into.
	a1 := mustAllocHomog(t, m, Homogeneous{N: 2, Demand: stats.Normal{Mu: 4, Sigma: 2}})
	a2 := mustAllocHomog(t, m, Homogeneous{N: 2, Demand: stats.Normal{Mu: 4, Sigma: 2}})
	if a1.Placement.Entries[0].Machine == a2.Placement.Entries[0].Machine {
		t.Fatalf("setup broken: both jobs on machine %d", a1.Placement.Entries[0].Machine)
	}
	m.FailMachine(a1.Placement.Entries[0].Machine)
	m.FailMachine(a2.Placement.Entries[0].Machine)
	results, _ := m.RepairAll()
	if len(results) != 2 {
		t.Fatalf("RepairAll returned %d results, want 2", len(results))
	}
	for _, res := range results {
		if res.Outcome != RepairMoved {
			t.Fatalf("job %d outcome %v, want moved", res.Job, res.Outcome)
		}
	}
	if got := m.AffectedJobs(); len(got) != 0 {
		t.Fatalf("AffectedJobs = %v after RepairAll, want none", got)
	}
}
