package core

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/stats"
	"repro/internal/topology"
)

// This file is the manager's durability seam. Every state-changing
// operation — allocation, release, fault injection, repair — is described
// by a Mutation and flows through one commit path: the operation is
// planned without touching live state (the DP runs on the live ledger for
// admissions and on a scratch clone for repairs), the resulting Mutation
// is offered to the attached Journal, and only then does applyLocked
// execute it against the ledger. Crash recovery replays journaled
// Mutations through the very same applyLocked, so a recovered manager is
// bit-identical to one that executed the operations live.

// ErrJournal reports that the attached journal rejected a mutation; the
// operation was NOT applied, so in-memory state still matches the log.
var ErrJournal = errors.New("core: journal write failed")

// ErrIdemConflict reports that an idempotency key was reused for a
// different operation than the one it originally committed.
var ErrIdemConflict = errors.New("core: idempotency key conflict")

// MutationOp enumerates the manager's state-changing operations.
type MutationOp uint8

const (
	// OpAlloc admits a job with a concrete placement.
	OpAlloc MutationOp = iota + 1
	// OpRelease frees an admitted job.
	OpRelease
	// OpFailMachine / OpRestoreMachine / OpFailLink / OpRestoreLink
	// mutate the fault overlay.
	OpFailMachine
	OpRestoreMachine
	OpFailLink
	OpRestoreLink
	// OpSetOffline administratively takes a machine in or out of service.
	OpSetOffline
	// OpRepair applies one repair outcome (noop/moved/degraded/failed).
	OpRepair
)

// String implements fmt.Stringer.
func (op MutationOp) String() string {
	switch op {
	case OpAlloc:
		return "alloc"
	case OpRelease:
		return "release"
	case OpFailMachine:
		return "fail_machine"
	case OpRestoreMachine:
		return "restore_machine"
	case OpFailLink:
		return "fail_link"
	case OpRestoreLink:
		return "restore_link"
	case OpSetOffline:
		return "set_offline"
	case OpRepair:
		return "repair"
	default:
		return fmt.Sprintf("MutationOp(%d)", int(op))
	}
}

// Contribution is the exported form of one per-link crossing-demand
// contribution, exactly as committed to the ledger. Journaling the
// committed values (rather than recomputing them on replay) is what makes
// recovery bit-identical.
type Contribution struct {
	Link  topology.LinkID `json:"link"`
	Mu    float64         `json:"mu,omitempty"`
	Sigma float64         `json:"sigma,omitempty"`
	Det   bool            `json:"det,omitempty"`
}

func exportContribs(cs []linkDemand) []Contribution {
	// nil for empty keeps exports canonical: a zero-contribution job (one
	// placed entirely inside a single machine) compares equal before and
	// after a JSON round trip, where omitempty drops the field.
	if len(cs) == 0 {
		return nil
	}
	out := make([]Contribution, len(cs))
	for i, c := range cs {
		out[i] = Contribution{Link: c.link, Mu: c.demand.Mu, Sigma: c.demand.Sigma, Det: c.det}
	}
	return out
}

func importContribs(cs []Contribution) []linkDemand {
	out := make([]linkDemand, len(cs))
	for i, c := range cs {
		out[i] = linkDemand{link: c.Link, demand: stats.Normal{Mu: c.Mu, Sigma: c.Sigma}, det: c.Det}
	}
	return out
}

// Mutation describes one state-changing commit. Which fields are
// meaningful depends on Op; see the field comments.
type Mutation struct {
	Op  MutationOp
	Job JobID // alloc, release, repair

	// Alloc: the admitted request (exactly one of Homog/Hetero set), the
	// committed placement and its per-link contributions.
	Homog     *Homogeneous
	Hetero    *Heterogeneous
	Placement *Placement
	Contribs  []Contribution

	Node    topology.NodeID // machine ops (fail/restore/offline)
	Link    topology.LinkID // link ops
	Offline bool            // OpSetOffline

	// Repair: the outcome, the new placement/contribs for moved and
	// degraded outcomes, and the honest post-repair risk factor.
	Outcome      RepairOutcome
	EffectiveEps float64

	// IdemKey, when non-empty, durably binds this mutation to an
	// idempotency key so retries replay instead of re-executing.
	IdemKey string
}

// Journal observes every state-changing commit. Both methods are invoked
// with the manager's write lock held, so the journal sees mutations in
// exactly the total order they are applied, and a checkpoint is always
// consistent with the log position. Commit is called BEFORE the mutation
// is applied; returning an error vetoes the operation.
type Journal interface {
	Commit(Mutation) error
	Checkpoint(*ManagerState) error
}

// AsyncJournal is an optional Journal extension for group commit.
// StageCommit appends the mutation to the journal's write queue —
// reserving its position in the log's total order — and returns a wait
// function that blocks until the record is durable. Staging happens under
// the manager's write lock, exactly like Commit, so the log order still
// equals the apply order; the wait runs after the lock is released, which
// lets concurrent commits share a single write+fsync. A staging error
// vetoes the mutation like a Commit error would.
type AsyncJournal interface {
	Journal
	StageCommit(Mutation) (wait func() error, err error)
}

// BatchJournal is an optional AsyncJournal extension for batch
// admission. StageCommitBatch appends the mutations to the write queue
// as one contiguous group under a single queue acquisition — all of
// them land in the same group-commit batch and share one write+fsync,
// and no concurrently flushing leader can split them across batches.
// Staging is all-or-nothing: an error vetoes every mutation in the
// slice. The returned wait covers all of them.
type BatchJournal interface {
	AsyncJournal
	StageCommitBatch(muts []Mutation) (wait func() error, err error)
}

// SetJournal attaches (or detaches, with nil) the journal observing the
// manager's commits. Attach only a journal whose log already reflects the
// manager's current state — typically the one returned by recovery, or a
// fresh journal on a fresh manager.
func (m *Manager) SetJournal(j Journal) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.journal = j
}

// Checkpoint hands the manager's full current state to the attached
// journal so it can snapshot and compact its log. It is a no-op without a
// journal.
func (m *Manager) Checkpoint() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.journal == nil {
		return nil
	}
	return m.journal.Checkpoint(m.exportStateLocked())
}

// CallOption modifies one manager call (allocate, release, fault).
type CallOption interface{ applyCall(*callOpts) }

type callOpts struct {
	idemKey string
	jobID   JobID
}

type idemKeyOption string

func (o idemKeyOption) applyCall(c *callOpts) { c.idemKey = string(o) }

// WithIdemKey makes the call idempotent under the given key: the first
// commit durably binds the key to its outcome, and any later call with
// the same key replays that outcome instead of re-executing. An empty key
// is ignored.
func WithIdemKey(key string) CallOption { return idemKeyOption(key) }

type jobIDOption JobID

func (o jobIDOption) applyCall(c *callOpts) { c.jobID = JobID(o) }

// WithJobID admits the allocation under an externally assigned job ID
// instead of the manager's own sequence — the sharded router allocates
// IDs globally and pushes them down into pod-local managers so one job
// keeps one ID across shards. The ID must be positive and unused; the
// manager's own sequence max-merges past it, so mixing external and
// sequential assignment on the same manager stays collision-free. A zero
// ID is ignored.
func WithJobID(id JobID) CallOption { return jobIDOption(id) }

func evalCallOpts(opts []CallOption) callOpts {
	var co callOpts
	for _, o := range opts {
		o.applyCall(&co)
	}
	return co
}

// CallMeta is the resolved view of a call-option list, for external
// coordinators — the sharded router routes on the idempotency key
// (replay, claim arbitration) before any pod manager sees the call.
type CallMeta struct {
	IdemKey string
	Job     JobID
}

// ResolveCallOptions evaluates a call-option list without invoking a
// manager.
func ResolveCallOptions(opts ...CallOption) CallMeta {
	co := evalCallOpts(opts)
	return CallMeta{IdemKey: co.idemKey, Job: co.jobID}
}

// idemEntry is the durable outcome bound to an idempotency key.
type idemEntry struct {
	op        MutationOp
	job       JobID
	placement Placement // alloc only
}

// journalLocked offers the mutation to the attached journal; a veto means
// the operation must not be applied.
func (m *Manager) journalLocked(mut Mutation) error {
	if m.journal == nil {
		return nil
	}
	if err := m.journal.Commit(mut); err != nil {
		return fmt.Errorf("%w: %w", ErrJournal, err)
	}
	return nil
}

// commitLocked is the synchronous commit path: journal first
// (write-ahead), then apply, all under the write lock. Every live
// mutation and every replayed one funnels through applyLocked, so the
// journal's total order is exactly the apply order. Hot paths that can
// afford to wait for durability after unlocking use stageLocked instead.
func (m *Manager) commitLocked(mut Mutation) error {
	if err := m.journalLocked(mut); err != nil {
		return err
	}
	return m.applyLocked(mut)
}

// noWait is the durability wait of an unjournaled (or synchronously
// journaled) commit.
func noWait() error { return nil }

// stageLocked offers the mutation to the journal without waiting for
// durability: the returned wait function must be invoked after m.mu is
// released and reports the durability outcome. With no AsyncJournal
// attached it degenerates to a synchronous journalLocked and a no-op
// wait. A staging error vetoes the mutation (nothing was applied); a
// wait error means the mutation IS applied in memory but its record may
// not have reached disk — the journal is poisoned at that point, so the
// manager refuses all further mutations, and a restart recovers the
// state the log actually holds (exactly as if the process had crashed
// before the fsync).
func (m *Manager) stageLocked(mut Mutation) (func() error, error) {
	if m.journal == nil {
		return noWait, nil
	}
	aj, ok := m.journal.(AsyncJournal)
	if !ok {
		if err := m.journalLocked(mut); err != nil {
			return nil, err
		}
		return noWait, nil
	}
	wait, err := aj.StageCommit(mut)
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrJournal, err)
	}
	return func() error {
		if werr := wait(); werr != nil {
			return fmt.Errorf("%w: %w", ErrJournal, werr)
		}
		return nil
	}, nil
}

// applyLocked executes one mutation against the ledger and bookkeeping.
// Live callers have already validated their mutation (the DP produced
// it); replay callers validate with validateMutationLocked first.
func (m *Manager) applyLocked(mut Mutation) error {
	switch mut.Op {
	case OpAlloc:
		a := &Allocation{
			ID:        mut.Job,
			Placement: mut.Placement.Clone(),
			contribs:  importContribs(mut.Contribs),
		}
		if mut.Homog != nil {
			h := *mut.Homog
			a.homog = &h
		}
		if mut.Hetero != nil {
			ds := make([]stats.Normal, len(mut.Hetero.Demands))
			copy(ds, mut.Hetero.Demands)
			a.hetero = &Heterogeneous{Demands: ds}
		}
		commit(m.led, &a.Placement, a.contribs)
		m.jobs[a.ID] = a
		if a.ID > m.nextID {
			m.nextID = a.ID
		}
		m.version++
		m.assertOccupancyLocked(&mut)

	case OpRelease:
		a, ok := m.jobs[mut.Job]
		if !ok {
			return fmt.Errorf("%w: %d", ErrUnknownJob, mut.Job)
		}
		rollback(m.led, &a.Placement, a.contribs)
		delete(m.jobs, mut.Job)
		delete(m.degraded, mut.Job)
		m.version++

	case OpFailMachine:
		if m.led.Faults().FailMachine(mut.Node) {
			m.fstats.machineFailures++
			m.version++
		}
	case OpRestoreMachine:
		if m.led.Faults().RestoreMachine(mut.Node) {
			m.fstats.machineRestores++
			m.version++
		}
	case OpFailLink:
		if m.led.Faults().FailLink(mut.Link) {
			m.fstats.linkFailures++
			m.version++
		}
	case OpRestoreLink:
		if m.led.Faults().RestoreLink(mut.Link) {
			m.fstats.linkRestores++
			m.version++
		}
	case OpSetOffline:
		m.led.SetOffline(mut.Node, mut.Offline)
		m.version++

	case OpRepair:
		a, ok := m.jobs[mut.Job]
		if !ok {
			return fmt.Errorf("%w: %d", ErrUnknownJob, mut.Job)
		}
		switch mut.Outcome {
		case RepairNoop:
			m.fstats.noopRepairs++
		case RepairMoved, RepairDegraded:
			rollback(m.led, &a.Placement, a.contribs)
			p := mut.Placement.Clone()
			contribs := importContribs(mut.Contribs)
			commit(m.led, &p, contribs)
			a.Placement, a.contribs = p, contribs
			if mut.Outcome == RepairDegraded {
				m.degraded[a.ID] = mut.EffectiveEps
				m.fstats.degradedRepairs++
			} else {
				delete(m.degraded, a.ID)
				m.fstats.movedRepairs++
			}
			m.version += 2
		case RepairFailed:
			rollback(m.led, &a.Placement, a.contribs)
			delete(m.jobs, a.ID)
			delete(m.degraded, a.ID)
			m.fstats.failedRepairs++
			m.version += 2
		default:
			return fmt.Errorf("core: unknown repair outcome %d", int(mut.Outcome))
		}

	default:
		return fmt.Errorf("core: unknown mutation op %d", int(mut.Op))
	}

	if mut.IdemKey != "" {
		e := idemEntry{op: mut.Op, job: mut.Job}
		if mut.Op == OpAlloc {
			e.placement = mut.Placement.Clone()
		}
		m.idem[mut.IdemKey] = e
	}
	return nil
}

// Replay validates and applies one journaled mutation without journaling
// it again — the recovery path. Mutations must be replayed in their
// original log order onto a manager whose state matches the log position.
func (m *Manager) Replay(mut Mutation) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.validateMutationLocked(mut); err != nil {
		return err
	}
	return m.applyLocked(mut)
}

// validateMutationLocked rejects mutations that would corrupt or panic
// the ledger. Live paths never produce such mutations; this guards the
// replay path against a journal that passed its checksums but is
// semantically inconsistent with the manager's state.
func (m *Manager) validateMutationLocked(mut Mutation) error {
	topo := m.led.Topology()
	validMachine := func(id topology.NodeID) error {
		if id < 0 || int(id) >= topo.Len() || !topo.Node(id).IsMachine() {
			return fmt.Errorf("core: node %d is not a machine", id)
		}
		return nil
	}
	validLink := func(id topology.LinkID) error {
		if id < 0 || int(id) >= topo.Len() || topo.Node(topology.NodeID(id)).Parent == topology.None {
			return fmt.Errorf("core: node %d has no uplink", id)
		}
		return nil
	}
	validContribs := func(cs []Contribution) error {
		for _, c := range cs {
			if err := validLink(c.Link); err != nil {
				return err
			}
			if c.Sigma < 0 || math.IsNaN(c.Mu) || math.IsInf(c.Mu, 0) ||
				math.IsNaN(c.Sigma) || math.IsInf(c.Sigma, 0) {
				return fmt.Errorf("core: invalid contribution %+v", c)
			}
		}
		return nil
	}
	// validPlacement checks slot feasibility exactly as commit's UseSlots
	// will see it: fault-aware free slots, with the freed counts per
	// machine (the job's old placement, rolled back first) credited back.
	validPlacement := func(p *Placement, freed map[topology.NodeID]int) error {
		if p == nil {
			return errors.New("core: mutation has no placement")
		}
		seen := make(map[topology.NodeID]bool, len(p.Entries))
		for _, e := range p.Entries {
			if err := validMachine(e.Machine); err != nil {
				return err
			}
			if e.Count <= 0 || seen[e.Machine] {
				return fmt.Errorf("core: bad placement entry on machine %d", e.Machine)
			}
			if e.VMs != nil && len(e.VMs) != e.Count {
				return fmt.Errorf("core: machine %d lists %d VMs for count %d", e.Machine, len(e.VMs), e.Count)
			}
			seen[e.Machine] = true
			free := 0
			if m.led.Faults().Alive(e.Machine) {
				free = topo.Node(e.Machine).Slots - m.led.used[e.Machine] + freed[e.Machine]
			}
			if e.Count > free {
				return fmt.Errorf("core: machine %d needs %d slots, has %d free", e.Machine, e.Count, free)
			}
		}
		return nil
	}

	switch mut.Op {
	case OpAlloc:
		if mut.Job <= 0 {
			return fmt.Errorf("core: bad job id %d", mut.Job)
		}
		if _, ok := m.jobs[mut.Job]; ok {
			return fmt.Errorf("core: duplicate job id %d", mut.Job)
		}
		if (mut.Homog == nil) == (mut.Hetero == nil) {
			return errors.New("core: alloc must carry exactly one request kind")
		}
		want := 0
		if mut.Homog != nil {
			if err := mut.Homog.Validate(); err != nil {
				return err
			}
			want = mut.Homog.N
		} else {
			if err := mut.Hetero.Validate(); err != nil {
				return err
			}
			want = mut.Hetero.N()
		}
		if err := validPlacement(mut.Placement, nil); err != nil {
			return err
		}
		if got := mut.Placement.TotalVMs(); got != want {
			return fmt.Errorf("core: placement has %d VMs, want %d", got, want)
		}
		return validContribs(mut.Contribs)

	case OpRelease:
		if _, ok := m.jobs[mut.Job]; !ok {
			return fmt.Errorf("%w: %d", ErrUnknownJob, mut.Job)
		}
		return nil

	case OpFailMachine, OpRestoreMachine, OpSetOffline:
		return validMachine(mut.Node)
	case OpFailLink, OpRestoreLink:
		return validLink(mut.Link)

	case OpRepair:
		a, ok := m.jobs[mut.Job]
		if !ok {
			return fmt.Errorf("%w: %d", ErrUnknownJob, mut.Job)
		}
		switch mut.Outcome {
		case RepairNoop, RepairFailed:
			return nil
		case RepairMoved, RepairDegraded:
			if math.IsNaN(mut.EffectiveEps) || mut.EffectiveEps < 0 || mut.EffectiveEps > 1 {
				return fmt.Errorf("core: bad effective eps %v", mut.EffectiveEps)
			}
			freed := make(map[topology.NodeID]int, len(a.Placement.Entries))
			for _, e := range a.Placement.Entries {
				freed[e.Machine] += e.Count
			}
			if err := validPlacement(mut.Placement, freed); err != nil {
				return err
			}
			return validContribs(mut.Contribs)
		default:
			return fmt.Errorf("core: unknown repair outcome %d", int(mut.Outcome))
		}

	default:
		return fmt.Errorf("core: unknown mutation op %d", int(mut.Op))
	}
}
