package core

import (
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/stats"
	"repro/internal/topology"
)

// loadedThreeTier builds a mid-size three-tier datacenter (256 machines)
// with seeded background load so the DP runs against non-trivial state.
func loadedThreeTier(t testing.TB) *Ledger {
	t.Helper()
	topo, err := topology.NewThreeTier(topology.ThreeTierConfig{
		Aggs: 4, ToRsPerAgg: 4, MachinesPerRack: 16, SlotsPerMachine: 4,
		HostCap: 1000, Oversub: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	led, err := NewLedger(topo, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	r := stats.NewRand(7)
	for _, link := range topo.AtLevel(1) {
		led.AddStochastic(link, stats.Normal{Mu: r.UniformRange(200, 2000), Sigma: r.UniformRange(50, 600)})
	}
	for _, m := range topo.Machines() {
		led.UseSlots(m, r.IntN(3))
	}
	return led
}

// TestParallelHomogMatchesSequential: the level-parallel DP must produce
// bit-identical placements to the sequential path for every policy, on a
// large loaded topology across a sweep of request sizes.
func TestParallelHomogMatchesSequential(t *testing.T) {
	led := loadedThreeTier(t)
	for _, policy := range []Policy{MinMaxOccupancy, FirstFeasible, GreedyPack} {
		for _, n := range []int{1, 2, 5, 17, 49, 80, 200} {
			req := Homogeneous{N: n, Demand: stats.Normal{Mu: 300, Sigma: 150}}
			pSeq, _, errSeq := AllocateHomogWorkers(led, req, policy, 1)
			pPar, _, errPar := AllocateHomogWorkers(led, req, policy, 4)
			if (errSeq == nil) != (errPar == nil) {
				t.Fatalf("policy %v N=%d: feasibility differs: seq=%v par=%v", policy, n, errSeq, errPar)
			}
			if errSeq != nil {
				continue
			}
			if pSeq.String() != pPar.String() {
				t.Fatalf("policy %v N=%d: placements differ:\nseq: %v\npar: %v", policy, n, &pSeq, &pPar)
			}
		}
	}
}

// TestParallelHomogRandomTopologies fuzzes the equivalence across random
// topologies, background loads and worker counts, exercising scratch
// arena reuse across calls with different tree shapes.
func TestParallelHomogRandomTopologies(t *testing.T) {
	r := stats.NewRand(31337)
	compared := 0
	for trial := 0; trial < 120; trial++ {
		tp := randomTopology(r)
		led, err := NewLedger(tp, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		for _, link := range tp.Links() {
			if r.Float64() < 0.4 {
				led.AddDet(link, r.UniformRange(0, 0.4*tp.LinkCap(link)))
			}
		}
		n := r.UniformInt(1, min(10, tp.TotalSlots()))
		req := Homogeneous{N: n, Demand: stats.Normal{Mu: r.UniformRange(1, 15), Sigma: r.UniformRange(0, 6)}}
		policy := []Policy{MinMaxOccupancy, FirstFeasible, GreedyPack}[trial%3]
		workers := 2 + trial%3
		pSeq, _, errSeq := AllocateHomogWorkers(led, req, policy, 1)
		pPar, contribs, errPar := AllocateHomogWorkers(led, req, policy, workers)
		if (errSeq == nil) != (errPar == nil) {
			t.Fatalf("trial %d: feasibility differs: seq=%v par=%v", trial, errSeq, errPar)
		}
		if errSeq != nil {
			continue
		}
		compared++
		if pSeq.String() != pPar.String() {
			t.Fatalf("trial %d (policy %v, workers %d): placements differ:\nseq: %v\npar: %v",
				trial, policy, workers, &pSeq, &pPar)
		}
		if verr := ValidatePlacement(led, contribs, &pPar, n); verr != nil {
			t.Fatalf("trial %d: parallel placement invalid: %v", trial, verr)
		}
	}
	if compared < 40 {
		t.Fatalf("only %d of 120 trials admitted; generator too hostile", compared)
	}
}

// TestParallelSubstringMatchesSequential: same equivalence contract for
// the heterogeneous substring heuristic.
func TestParallelSubstringMatchesSequential(t *testing.T) {
	led := loadedThreeTier(t)
	r := stats.NewRand(99)
	for _, n := range []int{1, 3, 6, 10, 16} {
		req := randHetero(r, n, 100, 500)
		pSeq, _, errSeq := AllocateHeteroSubstringWorkers(led, req, MinMaxOccupancy, 1)
		pPar, _, errPar := AllocateHeteroSubstringWorkers(led, req, MinMaxOccupancy, 4)
		if (errSeq == nil) != (errPar == nil) {
			t.Fatalf("N=%d: feasibility differs: seq=%v par=%v", n, errSeq, errPar)
		}
		if errSeq != nil {
			continue
		}
		if pSeq.String() != pPar.String() {
			t.Fatalf("N=%d: placements differ:\nseq: %v\npar: %v", n, &pSeq, &pPar)
		}
	}
}

// TestCrossingTableMemo: the memoized table must equal direct
// CrossingHomog evaluation entry for entry.
func TestCrossingTableMemo(t *testing.T) {
	d := stats.Normal{Mu: 250, Sigma: 80}
	for pass := 0; pass < 2; pass++ { // second pass hits the memo
		table := crossingTableHomog(d, 12)
		if len(table) != 13 {
			t.Fatalf("pass %d: table has %d entries, want 13", pass, len(table))
		}
		for m := range table {
			want := CrossingHomog(d, m, 12)
			if table[m] != want {
				t.Fatalf("pass %d: table[%d] = %v, want %v", pass, m, table[m], want)
			}
		}
	}
}

// TestManagerConcurrentStress hammers one manager with concurrent
// admissions, releases, dry runs, headroom probes and metrics reads.
// Run under -race it proves the snapshot machinery keeps read-only work
// off the write lock without data races; the final drain proves the
// ledger bookkeeping stayed exact throughout.
func TestManagerConcurrentStress(t *testing.T) {
	topo, err := topology.NewThreeTier(topology.ThreeTierConfig{
		Aggs: 2, ToRsPerAgg: 3, MachinesPerRack: 10, SlotsPerMachine: 4,
		HostCap: 1000, Oversub: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewManager(topo, 0.05)
	if err != nil {
		t.Fatal(err)
	}

	var (
		wg   sync.WaitGroup
		idMu sync.Mutex
		live []JobID
	)
	// Two allocator goroutines: admit and release with churn.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			r := stats.NewRand(seed)
			for i := 0; i < 60; i++ {
				mu := r.UniformRange(100, 400)
				req := Homogeneous{N: r.UniformInt(2, 12), Demand: stats.Normal{Mu: mu, Sigma: 0.4 * mu}}
				if a, err := m.AllocateHomog(req); err == nil {
					idMu.Lock()
					live = append(live, a.ID)
					idMu.Unlock()
				}
				if r.Float64() < 0.5 {
					idMu.Lock()
					var id JobID
					if len(live) > 0 {
						k := r.IntN(len(live))
						id = live[k]
						live[k] = live[len(live)-1]
						live = live[:len(live)-1]
					}
					idMu.Unlock()
					if id != 0 {
						if err := m.Release(id); err != nil {
							t.Errorf("Release(%d): %v", id, err)
							return
						}
					}
				}
			}
		}(uint64(1000 + g))
	}
	// Dry-run goroutine.
	wg.Add(1)
	go func() {
		defer wg.Done()
		r := stats.NewRand(2000)
		for i := 0; i < 80; i++ {
			mu := r.UniformRange(100, 400)
			m.CanAllocateHomog(Homogeneous{N: r.UniformInt(2, 12), Demand: stats.Normal{Mu: mu, Sigma: 0.3 * mu}})
		}
	}()
	// Headroom goroutine.
	wg.Add(1)
	go func() {
		defer wg.Done()
		req := Homogeneous{N: 6, Demand: stats.Normal{Mu: 200, Sigma: 80}}
		for i := 0; i < 15; i++ {
			if _, err := m.Headroom(req, 4); err != nil {
				t.Errorf("Headroom: %v", err)
				return
			}
		}
	}()
	// Metrics goroutine.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 150; i++ {
			if occ := m.MaxOccupancy(); occ >= 1 {
				t.Errorf("MaxOccupancy %v >= 1 under concurrent churn", occ)
				return
			}
			m.MaxOccupancyByLevel()
			m.FreeSlots()
			m.Running()
		}
	}()
	wg.Wait()

	// Drain and verify the ledger returns exactly to empty.
	for _, id := range live {
		if err := m.Release(id); err != nil {
			t.Fatalf("final Release(%d): %v", id, err)
		}
	}
	if got := m.Running(); got != 0 {
		t.Fatalf("%d jobs still tracked after drain", got)
	}
	if got, want := m.FreeSlots(), topo.TotalSlots(); got != want {
		t.Fatalf("free slots %d after drain, want %d", got, want)
	}
	if occ := m.MaxOccupancy(); occ > 1e-6 {
		t.Fatalf("max occupancy %v after drain, want ~0", occ)
	}
}

// TestManagerSnapshotFreshness: sequential callers must always observe
// their own mutations — a dry run immediately after an admission sees the
// admitted load, and after the release sees it gone.
func TestManagerSnapshotFreshness(t *testing.T) {
	topo, err := topology.NewThreeTier(topology.ThreeTierConfig{
		Aggs: 1, ToRsPerAgg: 1, MachinesPerRack: 2, SlotsPerMachine: 2,
		HostCap: 1000, Oversub: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewManager(topo, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	req := Homogeneous{N: 4, Demand: stats.Normal{Mu: 300, Sigma: 100}}
	if !m.CanAllocateHomog(req) {
		t.Fatal("empty datacenter should admit the request")
	}
	a, err := m.AllocateHomog(req)
	if err != nil {
		t.Fatalf("AllocateHomog: %v", err)
	}
	if m.CanAllocateHomog(req) {
		t.Fatal("full datacenter should reject the dry run (stale snapshot?)")
	}
	if err := m.Release(a.ID); err != nil {
		t.Fatalf("Release: %v", err)
	}
	if !m.CanAllocateHomog(req) {
		t.Fatal("drained datacenter should admit again (stale snapshot?)")
	}
}

// homogLevelWorks replays the level loop of AllocateHomogWorkers
// sequentially and returns the per-level work estimates the fan-out gate
// will see — the records passed to homogLevelWork are in exactly the
// state the gate inspects them in.
func homogLevelWorks(t testing.TB, led *Ledger, req Homogeneous) []int {
	t.Helper()
	topo := led.Topology()
	crossing := crossingTableHomog(req.Demand, req.N)
	scr := getHomogScratch(1, topo.Len())
	defer putHomogScratch(scr)
	works := make([]int, 0, topo.Height()+1)
	for level := 0; level <= topo.Height(); level++ {
		verts := topo.AtLevel(level)
		works = append(works, homogLevelWork(topo, verts, scr.records, req.N))
		forEachVertex(verts, 1, func(slot int, v topology.NodeID) {
			homogCompute(led, topo, v, req.N, crossing, scr.records, MinMaxOccupancy, scr.arenas[0])
		})
	}
	return works
}

// TestHomogLevelWorkGate pins the fan-out threshold's behavior at the two
// scales that matter: every level of the paper's default 1,000-machine
// datacenter must fall below parallelMinLevelWork (the measured regression
// showed fan-out losing there), while a datacenter a few times larger must
// cross it so big deployments still parallelize.
func TestHomogLevelWorkGate(t *testing.T) {
	paper, err := topology.NewThreeTier(topology.PaperConfig())
	if err != nil {
		t.Fatal(err)
	}
	led, err := NewLedger(paper, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	req := Homogeneous{N: 49, Demand: stats.Normal{Mu: 300, Sigma: 120}}
	for level, work := range homogLevelWorks(t, led, req) {
		if work >= parallelMinLevelWork {
			t.Errorf("paper topology level %d: estimated work %d >= threshold %d; default scale would fan out",
				level, work, parallelMinLevelWork)
		}
	}

	big, err := topology.NewThreeTier(topology.ThreeTierConfig{
		Aggs: 10, ToRsPerAgg: 20, MachinesPerRack: 20, SlotsPerMachine: 4,
		HostCap: 1000, Oversub: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	bigLed, err := NewLedger(big, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	crossed := false
	for _, work := range homogLevelWorks(t, bigLed, Homogeneous{N: 200, Demand: stats.Normal{Mu: 300, Sigma: 120}}) {
		if work >= parallelMinLevelWork {
			crossed = true
		}
	}
	if !crossed {
		t.Errorf("4,000-machine topology never crosses the fan-out threshold %d; gate too conservative", parallelMinLevelWork)
	}
}

// TestParallelHomogNotSlowerAtPaperScale is the bench guard for the
// fan-out gate: with the gate in place, an explicit worker count at the
// default tree size must cost no more than the sequential path (it runs
// the same per-level code once every level falls below the threshold).
// The generous bound only catches a regression to unconditional fan-out.
func TestParallelHomogNotSlowerAtPaperScale(t *testing.T) {
	topo, err := topology.NewThreeTier(topology.PaperConfig())
	if err != nil {
		t.Fatal(err)
	}
	led, err := NewLedger(topo, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	r := stats.NewRand(1)
	for _, link := range topo.AtLevel(1) {
		led.AddStochastic(link, stats.Normal{Mu: r.UniformRange(500, 3000), Sigma: r.UniformRange(100, 800)})
	}
	for _, m := range topo.Machines() {
		led.UseSlots(m, r.IntN(3))
	}
	req := Homogeneous{N: 49, Demand: stats.Normal{Mu: 300, Sigma: 120}}

	best := func(workers int) time.Duration {
		bestD := time.Duration(math.MaxInt64)
		for i := 0; i < 3; i++ {
			start := time.Now()
			if _, _, err := AllocateHomogWorkers(led, req, MinMaxOccupancy, workers); err != nil {
				t.Fatal(err)
			}
			if d := time.Since(start); d < bestD {
				bestD = d
			}
		}
		return bestD
	}
	best(1) // warm the crossing-table memo and scratch pools for both paths
	seq := best(1)
	par := best(8)
	t.Logf("seq=%v par(8)=%v", seq, par)
	if par > seq*3/2 {
		t.Errorf("workers=8 took %v vs sequential %v at paper scale; fan-out gate not effective", par, seq)
	}
}
