package core

import (
	"encoding/json"
	"errors"
	"reflect"
	"testing"

	"repro/internal/stats"
)

// fakeJournal records every committed mutation, optionally vetoing them.
type fakeJournal struct {
	muts    []Mutation
	states  []*ManagerState
	vetoErr error
}

func (f *fakeJournal) Commit(m Mutation) error {
	if f.vetoErr != nil {
		return f.vetoErr
	}
	f.muts = append(f.muts, m)
	return nil
}

func (f *fakeJournal) Checkpoint(st *ManagerState) error {
	f.states = append(f.states, st)
	return nil
}

// runMixedWorkload drives one of every mutation kind through the manager.
func runMixedWorkload(t *testing.T, m *Manager) {
	t.Helper()
	a1 := mustAllocHomog(t, m, Homogeneous{N: 3, Demand: stats.Normal{Mu: 5, Sigma: 2}})
	mustAllocHomog(t, m, Homogeneous{N: 2, Demand: stats.Normal{Mu: 4, Sigma: 1}})
	if _, err := m.AllocateHetero(Heterogeneous{Demands: []stats.Normal{{Mu: 3, Sigma: 1}, {Mu: 6, Sigma: 2}}}); err != nil {
		t.Fatalf("AllocateHetero: %v", err)
	}
	victim := a1.Placement.Entries[0].Machine
	if _, err := m.FailMachine(victim); err != nil {
		t.Fatalf("FailMachine: %v", err)
	}
	if _, err := m.RepairJob(a1.ID); err != nil {
		t.Fatalf("RepairJob: %v", err)
	}
	if err := m.RestoreMachine(victim); err != nil {
		t.Fatalf("RestoreMachine: %v", err)
	}
	if err := m.SetOffline(victim, true); err != nil {
		t.Fatalf("SetOffline: %v", err)
	}
	if err := m.Release(a1.ID); err != nil {
		t.Fatalf("Release: %v", err)
	}
}

// TestJournalReplayRebuildsIdenticalState is the heart of the durability
// design: replaying the journal's mutation stream into a fresh manager
// must reproduce the live manager's full exported state, bit for bit.
func TestJournalReplayRebuildsIdenticalState(t *testing.T) {
	m := mustManager(t, smallThreeTier(), 0.05)
	j := &fakeJournal{}
	m.SetJournal(j)
	runMixedWorkload(t, m)

	m2 := mustManager(t, smallThreeTier(), 0.05)
	for i, mut := range j.muts {
		if err := m2.Replay(mut); err != nil {
			t.Fatalf("Replay(record %d, op %v): %v", i, mut.Op, err)
		}
	}
	if got, want := m2.ExportState(), m.ExportState(); !reflect.DeepEqual(got, want) {
		t.Fatalf("replayed state differs:\n got %+v\nwant %+v", got, want)
	}
}

// TestJournalVetoRollsBackNothing: a vetoed commit must leave the manager
// exactly as it was, for every operation kind.
func TestJournalVetoRollsBackNothing(t *testing.T) {
	m := mustManager(t, smallThreeTier(), 0.05)
	a := mustAllocHomog(t, m, Homogeneous{N: 2, Demand: stats.Normal{Mu: 5, Sigma: 2}})
	before := m.ExportState()

	j := &fakeJournal{vetoErr: errors.New("disk full")}
	m.SetJournal(j)
	if _, err := m.AllocateHomog(Homogeneous{N: 1, Demand: stats.Normal{Mu: 5, Sigma: 2}}); !errors.Is(err, ErrJournal) {
		t.Fatalf("vetoed AllocateHomog error = %v, want ErrJournal", err)
	}
	if err := m.Release(a.ID); !errors.Is(err, ErrJournal) {
		t.Fatalf("vetoed Release error = %v, want ErrJournal", err)
	}
	if _, err := m.FailMachine(a.Placement.Entries[0].Machine); !errors.Is(err, ErrJournal) {
		t.Fatalf("vetoed FailMachine error = %v, want ErrJournal", err)
	}
	if err := m.SetOffline(a.Placement.Entries[0].Machine, true); !errors.Is(err, ErrJournal) {
		t.Fatalf("vetoed SetOffline error = %v, want ErrJournal", err)
	}
	m.SetJournal(nil)
	if got := m.ExportState(); !reflect.DeepEqual(got, before) {
		t.Fatalf("vetoed operations mutated state:\n got %+v\nwant %+v", got, before)
	}
}

// TestIdempotentAllocateReplaysPlacement: a repeated allocate with the
// same key returns the original job without reserving twice; reusing the
// key for a different operation kind conflicts.
func TestIdempotentAllocateReplaysPlacement(t *testing.T) {
	m := mustManager(t, smallThreeTier(), 0.05)
	req := Homogeneous{N: 2, Demand: stats.Normal{Mu: 5, Sigma: 2}}
	a1, err := m.AllocateHomog(req, WithIdemKey("k1"))
	if err != nil {
		t.Fatalf("first allocate: %v", err)
	}
	free := m.FreeSlots()
	a2, err := m.AllocateHomog(req, WithIdemKey("k1"))
	if err != nil {
		t.Fatalf("replayed allocate: %v", err)
	}
	if a2.ID != a1.ID || a2.Placement.String() != a1.Placement.String() {
		t.Fatalf("replay returned job %d %v, want job %d %v", a2.ID, a2.Placement, a1.ID, a1.Placement)
	}
	if m.FreeSlots() != free || m.Running() != 1 {
		t.Fatalf("replayed allocate reserved again: %d free, %d running", m.FreeSlots(), m.Running())
	}
	if err := m.Release(999, WithIdemKey("k1")); !errors.Is(err, ErrIdemConflict) {
		t.Fatalf("key reuse across ops error = %v, want ErrIdemConflict", err)
	}
}

// TestIdempotentReleaseSurvivesRepeat: the second keyed release succeeds
// silently even though the job is long gone.
func TestIdempotentReleaseSurvivesRepeat(t *testing.T) {
	m := mustManager(t, smallThreeTier(), 0.05)
	a := mustAllocHomog(t, m, Homogeneous{N: 2, Demand: stats.Normal{Mu: 5, Sigma: 2}})
	if err := m.Release(a.ID, WithIdemKey("rel")); err != nil {
		t.Fatalf("first release: %v", err)
	}
	if err := m.Release(a.ID, WithIdemKey("rel")); err != nil {
		t.Fatalf("replayed release: %v", err)
	}
	if err := m.Release(a.ID); !errors.Is(err, ErrUnknownJob) {
		t.Fatalf("unkeyed repeat error = %v, want ErrUnknownJob", err)
	}
}

// TestIdempotentFaultSkipsReexecution: repeating a keyed fault injection
// must not bump the failure counters again.
func TestIdempotentFaultSkipsReexecution(t *testing.T) {
	m := mustManager(t, smallThreeTier(), 0.05)
	victim := m.Topology().Machines()[0]
	if _, err := m.FailMachine(victim, WithIdemKey("f1")); err != nil {
		t.Fatal(err)
	}
	if err := m.RestoreMachine(victim); err != nil {
		t.Fatal(err)
	}
	// The replayed fail must NOT re-fail the restored machine.
	if _, err := m.FailMachine(victim, WithIdemKey("f1")); err != nil {
		t.Fatal(err)
	}
	st := m.FailureStats()
	if st.MachineFailures != 1 || st.MachinesDown != 0 {
		t.Fatalf("replayed fault re-executed: %+v", st)
	}
}

// TestExportStateRoundTrip: export -> rebuild -> export must be a fixed
// point, including after faults, and survive a JSON round trip bit-exactly.
func TestExportStateRoundTrip(t *testing.T) {
	m := mustManager(t, smallThreeTier(), 0.05)
	m.SetJournal(&fakeJournal{})
	a := mustAllocHomog(t, m, Homogeneous{N: 3, Demand: stats.Normal{Mu: 5.125, Sigma: 2.0625}})
	if _, err := m.AllocateHetero(Heterogeneous{Demands: []stats.Normal{{Mu: 3.3, Sigma: 1.1}, {Mu: 0.7, Sigma: 0.2}}}, WithIdemKey("het")); err != nil {
		t.Fatal(err)
	}
	if _, err := m.FailMachine(a.Placement.Entries[0].Machine, WithIdemKey("boom")); err != nil {
		t.Fatal(err)
	}

	st := m.ExportState()
	blob, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	var decoded ManagerState
	if err := json.Unmarshal(blob, &decoded); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(&decoded, st) {
		t.Fatalf("JSON round trip changed state:\n got %+v\nwant %+v", &decoded, st)
	}

	m2, err := NewManagerFromState(mustTopo(smallThreeTier()), 0.05, &decoded)
	if err != nil {
		t.Fatalf("NewManagerFromState: %v", err)
	}
	if got := m2.ExportState(); !reflect.DeepEqual(got, st) {
		t.Fatalf("rebuilt state differs:\n got %+v\nwant %+v", got, st)
	}

	// The rebuilt manager must behave identically going forward too.
	r1, err1 := m.RepairJob(a.ID)
	r2, err2 := m2.RepairJob(a.ID)
	if (err1 == nil) != (err2 == nil) || r1.Outcome != r2.Outcome || r1.Placement.String() != r2.Placement.String() {
		t.Fatalf("post-rebuild repair diverged: %+v/%v vs %+v/%v", r1, err1, r2, err2)
	}
}

// TestNewManagerFromStateRejectsCorruption: structurally inconsistent
// snapshots must be refused, not replayed into a manager that panics later.
func TestNewManagerFromStateRejectsCorruption(t *testing.T) {
	m := mustManager(t, smallThreeTier(), 0.05)
	mustAllocHomog(t, m, Homogeneous{N: 2, Demand: stats.Normal{Mu: 5, Sigma: 2}})
	base := m.ExportState()
	topo := mustTopo(smallThreeTier())

	corrupt := []struct {
		name string
		mod  func(st *ManagerState)
	}{
		{"truncated links", func(st *ManagerState) { st.Links = st.Links[:1] }},
		{"negative used", func(st *ManagerState) { st.Used[int(st.Jobs[0].Placement[0].Machine)] = -1 }},
		{"slot mismatch", func(st *ManagerState) { st.Jobs[0].Placement[0].Count++ }},
		{"job id beyond next", func(st *ManagerState) { st.Jobs[0].ID = st.NextID + 5 }},
		{"both request kinds", func(st *ManagerState) {
			st.Jobs[0].Hetero = []DemandSpec{{Mu: 1}}
		}},
		{"bad fault node", func(st *ManagerState) { st.MachinesDown = []int{0} }},
	}
	for _, tc := range corrupt {
		blob, _ := json.Marshal(base)
		var st ManagerState
		if err := json.Unmarshal(blob, &st); err != nil {
			t.Fatal(err)
		}
		tc.mod(&st)
		if _, err := NewManagerFromState(topo, 0.05, &st); err == nil {
			t.Errorf("%s: corrupt state accepted", tc.name)
		}
	}
}
