package core

import (
	"math"
	"testing"

	"repro/internal/stats"
	"repro/internal/topology"
)

// smallRandomTopology returns a random tree with at most maxSlots total VM
// slots, so exhaustive placement enumeration stays cheap.
func smallRandomTopology(r *stats.Rand, maxSlots int) *topology.Topology {
	for {
		tp := randomTopology(r)
		if tp.TotalSlots() <= maxSlots {
			return tp
		}
	}
}

// bruteForcePinned enumerates every slot-respecting distribution of the
// request's VMs that keeps at least pinned[m] VMs on each pinned machine,
// and returns the lexicographic best (enclosing-subtree level, max
// in-subtree occupancy) — the reference the pinned DP must match. With an
// empty pinned map it reduces to bruteForceHomog.
func bruteForcePinned(led *Ledger, req Homogeneous, pinned map[topology.NodeID]int) (level int, value float64, found bool) {
	tp := led.Topology()
	machines := tp.Machines()
	best := struct {
		level int
		value float64
		found bool
	}{}
	counts := make([]int, len(machines))
	var recurse func(i, left int)
	recurse = func(i, left int) {
		if i == len(machines) {
			if left != 0 {
				return
			}
			var p Placement
			for j, c := range counts {
				if c > 0 {
					p.Entries = append(p.Entries, PlacementEntry{Machine: machines[j], Count: c})
				}
			}
			if p.TotalVMs() == 0 {
				return
			}
			contribs := homogContributions(tp, req, &p)
			if ValidatePlacement(led, contribs, &p, req.N) != nil {
				return
			}
			sub := enclosingSubtree(tp, &p)
			lv := tp.Node(sub).Level
			val := maxOccInSubtree(led, sub, contribs)
			if !best.found || lv < best.level || (lv == best.level && val < best.value-1e-12) {
				best.level, best.value, best.found = lv, val, true
			}
			return
		}
		lo := pinned[machines[i]]
		maxHere := min(left, led.FreeSlots(machines[i]))
		if lo > maxHere {
			return
		}
		for c := lo; c <= maxHere; c++ {
			counts[i] = c
			recurse(i+1, left-c)
		}
		counts[i] = 0
	}
	recurse(0, req.N)
	return best.level, best.value, best.found
}

// TestHomogDifferentialRandomTrees cross-checks the homogeneous min-max DP
// against exhaustive placement enumeration on seeded random trees capped at
// 12 slots: exactly the same feasibility, subtree level and optimal value.
// Table-driven over independent seeds so a regression pins the failing
// stream.
func TestHomogDifferentialRandomTrees(t *testing.T) {
	cases := []struct {
		name   string
		seed   uint64
		trials int
		eps    float64
	}{
		{"eps05-streamA", 1001, 40, 0.05},
		{"eps05-streamB", 2002, 40, 0.05},
		{"eps10-streamC", 3003, 40, 0.10},
		{"eps01-tight", 4004, 30, 0.01},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			r := stats.NewRand(tc.seed)
			checked := 0
			for trial := 0; trial < tc.trials; trial++ {
				tp := smallRandomTopology(r, 12)
				led, err := NewLedger(tp, tc.eps)
				if err != nil {
					t.Fatal(err)
				}
				for _, link := range tp.Links() {
					if r.Float64() < 0.4 {
						led.AddDet(link, r.UniformRange(0, 0.5*tp.LinkCap(link)))
					}
					if r.Float64() < 0.3 {
						led.AddStochastic(link, stats.Normal{
							Mu:    r.UniformRange(0, 6),
							Sigma: r.UniformRange(0, 3),
						})
					}
				}
				n := r.UniformInt(1, min(8, tp.TotalSlots()))
				req := Homogeneous{N: n, Demand: stats.Normal{
					Mu:    r.UniformRange(1, 15),
					Sigma: r.UniformRange(0, 6),
				}}

				wantLevel, wantVal, wantFound := bruteForceHomog(led, req)
				p, contribs, err := AllocateHomog(led, req, MinMaxOccupancy)
				if (err == nil) != wantFound {
					t.Fatalf("trial %d: DP err=%v, brute force found=%v (req %v on %d slots)",
						trial, err, wantFound, req, tp.TotalSlots())
				}
				if err != nil {
					continue
				}
				checked++
				sub := enclosingSubtree(tp, &p)
				gotLevel := tp.Node(sub).Level
				gotVal := maxOccInSubtree(led, sub, contribs)
				if gotLevel != wantLevel {
					t.Fatalf("trial %d: DP level %d, brute force %d", trial, gotLevel, wantLevel)
				}
				if math.Abs(gotVal-wantVal) > 1e-9 {
					t.Fatalf("trial %d: DP value %v, brute force %v", trial, gotVal, wantVal)
				}
			}
			if checked == 0 {
				t.Fatal("no trial admitted; generator too hostile to mean anything")
			}
		})
	}
}

// TestPinnedDifferentialRandomTrees does the same cross-check for the
// partial-placement (repair) DP: allocate, fail one machine of the
// placement, pin the survivors, and compare the strict pinned DP against
// brute force with the matching lower bounds.
func TestPinnedDifferentialRandomTrees(t *testing.T) {
	cases := []struct {
		name   string
		seed   uint64
		trials int
		eps    float64
	}{
		{"eps05-streamA", 5005, 50, 0.05},
		{"eps10-streamB", 6006, 50, 0.10},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			r := stats.NewRand(tc.seed)
			checked := 0
			for trial := 0; trial < tc.trials; trial++ {
				tp := smallRandomTopology(r, 12)
				led, err := NewLedger(tp, tc.eps)
				if err != nil {
					t.Fatal(err)
				}
				for _, link := range tp.Links() {
					if r.Float64() < 0.3 {
						led.AddDet(link, r.UniformRange(0, 0.4*tp.LinkCap(link)))
					}
				}
				n := r.UniformInt(2, min(8, tp.TotalSlots()))
				req := Homogeneous{N: n, Demand: stats.Normal{
					Mu:    r.UniformRange(1, 12),
					Sigma: r.UniformRange(0, 5),
				}}
				p, _, err := AllocateHomog(led, req, MinMaxOccupancy)
				if err != nil || len(p.Entries) < 2 {
					continue // need a spread placement to have survivors
				}
				// Fail one machine of the placement; survivors are pinned.
				victim := p.Entries[r.UniformInt(0, len(p.Entries)-1)].Machine
				led.Faults().FailMachine(victim)
				pinned := make(map[topology.NodeID]int)
				for _, e := range p.Entries {
					if e.Machine != victim {
						pinned[e.Machine] = e.Count
					}
				}

				wantLevel, wantVal, wantFound := bruteForcePinned(led, req, pinned)
				rp, contribs, err := AllocateHomogPinned(led, req, MinMaxOccupancy, pinned, false)
				if (err == nil) != wantFound {
					t.Fatalf("trial %d: pinned DP err=%v, brute force found=%v (req %v, pinned %v)",
						trial, err, wantFound, req, pinned)
				}
				led.Faults().RestoreMachine(victim)
				if err != nil {
					continue
				}
				checked++
				counts := placementCounts(&rp)
				for mc, c := range pinned {
					if counts[mc] < c {
						t.Fatalf("trial %d: pinned machine %d got %d VMs, want >= %d", trial, mc, counts[mc], c)
					}
				}
				if counts[victim] != 0 {
					t.Fatalf("trial %d: pinned DP used the failed machine", trial)
				}
				sub := enclosingSubtree(tp, &rp)
				gotLevel := tp.Node(sub).Level
				gotVal := maxOccInSubtree(led, sub, contribs)
				if gotLevel != wantLevel {
					t.Fatalf("trial %d: pinned DP level %d, brute force %d", trial, gotLevel, wantLevel)
				}
				if math.Abs(gotVal-wantVal) > 1e-9 {
					t.Fatalf("trial %d: pinned DP value %v, brute force %v", trial, gotVal, wantVal)
				}
			}
			if checked == 0 {
				t.Fatal("no trial produced a repairable instance")
			}
		})
	}
}

// TestPinnedEmptyMatchesPlainDP: with nothing pinned the partial-placement
// DP must be exactly AllocateHomog.
func TestPinnedEmptyMatchesPlainDP(t *testing.T) {
	r := stats.NewRand(7007)
	for trial := 0; trial < 40; trial++ {
		tp := smallRandomTopology(r, 12)
		led, err := NewLedger(tp, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		n := r.UniformInt(1, min(8, tp.TotalSlots()))
		req := Homogeneous{N: n, Demand: stats.Normal{Mu: r.UniformRange(1, 10), Sigma: r.UniformRange(0, 4)}}
		p1, _, err1 := AllocateHomog(led, req, MinMaxOccupancy)
		p2, _, err2 := AllocateHomogPinned(led, req, MinMaxOccupancy, nil, false)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("trial %d: feasibility differs: %v vs %v", trial, err1, err2)
		}
		if err1 != nil {
			continue
		}
		if p1.String() != p2.String() {
			t.Fatalf("trial %d: placements differ:\n plain  %v\n pinned %v", trial, &p1, &p2)
		}
	}
}

// TestPinnedRejectsBadPins: structural validation of the pinned map.
func TestPinnedRejectsBadPins(t *testing.T) {
	tp := mustTopo(smallThreeTier())
	req := Homogeneous{N: 2, Demand: stats.Normal{Mu: 5, Sigma: 1}}
	mc := tp.Machines()[0]

	cases := []struct {
		name   string
		pinned map[topology.NodeID]int
		setup  func(led *Ledger)
	}{
		{"negative count", map[topology.NodeID]int{mc: -1}, nil},
		{"non-machine", map[topology.NodeID]int{tp.Root(): 1}, nil},
		{"exceeds request", map[topology.NodeID]int{mc: 3}, nil},
		{"exceeds slots", map[topology.NodeID]int{mc: 2}, func(led *Ledger) { led.UseSlots(mc, 2) }},
		{"dead machine", map[topology.NodeID]int{mc: 1}, func(led *Ledger) { led.Faults().FailMachine(mc) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			led := newTestLedger(t, tp, 0.05)
			if tc.setup != nil {
				tc.setup(led)
			}
			if _, _, err := AllocateHomogPinned(led, req, MinMaxOccupancy, tc.pinned, false); err == nil {
				t.Fatal("expected an error")
			}
		})
	}
}
