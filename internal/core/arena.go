package core

import (
	"sync"
)

// This file implements the allocation-free scratch machinery behind the
// allocator hot path. Every AllocateHomog / AllocateHeteroSubstring call
// used to make fresh DP slices per vertex per child — several thousand
// heap allocations per admission on the paper-scale tree. The allocators
// now draw all per-call DP state from a sync.Pool-backed scratch arena
// that is reset (not freed) between calls, so a steady admission stream
// runs with near-zero garbage.

// block is a bump allocator over a single backing slice. Allocations are
// handed out zeroed; when the backing slice is exhausted a larger one
// replaces it (slices already handed out keep referencing the old backing,
// which the GC reclaims once the DP results die). reset makes the current
// backing reusable, so capacity converges after a few calls and steady
// state performs no heap allocation at all.
type block[T any] struct {
	buf []T
	off int
}

// alloc returns a zeroed slice of length n with no spare capacity, so
// appends by callers can never bleed into neighboring allocations.
func (b *block[T]) alloc(n int) []T {
	if b.off+n > len(b.buf) {
		size := 2 * len(b.buf)
		if size < n {
			size = n
		}
		if size < 1024 {
			size = 1024
		}
		b.buf = make([]T, size)
		b.off = 0
	}
	s := b.buf[b.off : b.off+n : b.off+n]
	b.off += n
	clear(s)
	return s
}

func (b *block[T]) reset() { b.off = 0 }

// arena groups the typed bump allocators the DP records draw from. An
// arena is not safe for concurrent use; parallel DP workers each hold
// their own.
type arena struct {
	f64 block[float64]
	i32 block[int32]
	bl  block[bool]
	s32 block[[]int32]
}

func (a *arena) reset() {
	a.f64.reset()
	a.i32.reset()
	a.bl.reset()
	a.s32.reset()
}

// homogScratch is the reusable per-call state of AllocateHomog: the
// per-vertex record table plus one arena per DP worker.
type homogScratch struct {
	records []homogRecord
	arenas  []*arena
}

var homogScratchPool = sync.Pool{New: func() any { return new(homogScratch) }}

func getHomogScratch(workers, nodes int) *homogScratch {
	s := homogScratchPool.Get().(*homogScratch)
	if cap(s.records) < nodes {
		s.records = make([]homogRecord, nodes)
	}
	s.records = s.records[:nodes]
	for len(s.arenas) < workers {
		s.arenas = append(s.arenas, new(arena))
	}
	for _, a := range s.arenas[:workers] {
		a.reset()
	}
	return s
}

func putHomogScratch(s *homogScratch) { homogScratchPool.Put(s) }

// substrScratch is the reusable per-call state of AllocateHeteroSubstring.
type substrScratch struct {
	records []substrRecord
	arenas  []*arena
}

var substrScratchPool = sync.Pool{New: func() any { return new(substrScratch) }}

func getSubstrScratch(workers, nodes int) *substrScratch {
	s := substrScratchPool.Get().(*substrScratch)
	if cap(s.records) < nodes {
		s.records = make([]substrRecord, nodes)
	}
	s.records = s.records[:nodes]
	for len(s.arenas) < workers {
		s.arenas = append(s.arenas, new(arena))
	}
	for _, a := range s.arenas[:workers] {
		a.reset()
	}
	return s
}

func putSubstrScratch(s *substrScratch) { substrScratchPool.Put(s) }
