package core

import (
	"errors"
	"math"
	"sort"
	"testing"

	"repro/internal/stats"
	"repro/internal/topology"
)

// randHetero builds a random heterogeneous request of n VMs with means in
// [lo, hi) and sigma = rho*mu for random rho in [0, 1).
func randHetero(r *stats.Rand, n int, lo, hi float64) Heterogeneous {
	demands := make([]stats.Normal, n)
	for i := range demands {
		mu := r.UniformRange(lo, hi)
		demands[i] = stats.Normal{Mu: mu, Sigma: r.Float64() * mu}
	}
	req, err := NewHeterogeneous(demands)
	if err != nil {
		panic(err)
	}
	return req
}

// checkHeteroPlacement verifies a heterogeneous placement covers every VM
// index exactly once in addition to the generic validity invariants.
func checkHeteroPlacement(t *testing.T, led *Ledger, req Heterogeneous, p *Placement, contribs []linkDemand) {
	t.Helper()
	if err := ValidatePlacement(led, contribs, p, req.N()); err != nil {
		t.Fatalf("invalid placement: %v", err)
	}
	var all []int
	for _, e := range p.Entries {
		all = append(all, e.VMs...)
	}
	sort.Ints(all)
	if len(all) != req.N() {
		t.Fatalf("placement lists %d VM indices, want %d", len(all), req.N())
	}
	for i, vm := range all {
		if vm != i {
			t.Fatalf("VM indices %v do not cover 0..%d exactly once", all, req.N()-1)
		}
	}
}

func TestOrderByPercentile(t *testing.T) {
	req, _ := NewHeterogeneous([]stats.Normal{
		{Mu: 300, Sigma: 0},   // p95 = 300
		{Mu: 100, Sigma: 10},  // p95 ~ 116
		{Mu: 200, Sigma: 100}, // p95 ~ 364
	})
	order, sorted := orderByPercentile(req)
	if want := []int{1, 0, 2}; !equalInts(order, want) {
		t.Errorf("order = %v, want %v", order, want)
	}
	for pos := 1; pos < len(sorted); pos++ {
		if sorted[pos-1].Quantile(Percentile95) > sorted[pos].Quantile(Percentile95) {
			t.Errorf("sorted demands out of order at %d", pos)
		}
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestHeteroSubstringBasic(t *testing.T) {
	led := newTestLedger(t, fig3Topology(t), 0.05)
	req, _ := NewHeterogeneous([]stats.Normal{
		{Mu: 5, Sigma: 1}, {Mu: 10, Sigma: 3}, {Mu: 2, Sigma: 0.5},
		{Mu: 8, Sigma: 2}, {Mu: 4, Sigma: 1}, {Mu: 6, Sigma: 2},
	})
	p, contribs, err := AllocateHeteroSubstring(led, req, MinMaxOccupancy)
	if err != nil {
		t.Fatalf("AllocateHeteroSubstring: %v", err)
	}
	checkHeteroPlacement(t, led, req, &p, contribs)
}

func TestHeteroSubstringSingleMachine(t *testing.T) {
	led := newTestLedger(t, fig3Topology(t), 0.05)
	req := randHetero(stats.NewRand(3), 4, 1, 10)
	p, contribs, err := AllocateHeteroSubstring(led, req, MinMaxOccupancy)
	if err != nil {
		t.Fatalf("AllocateHeteroSubstring: %v", err)
	}
	if len(p.Entries) != 1 {
		t.Errorf("placement uses %d machines, want 1 (fits in a machine)", len(p.Entries))
	}
	if len(contribs) != 0 {
		t.Errorf("contribs = %v, want none", contribs)
	}
}

func TestHeteroSubstringRejects(t *testing.T) {
	led := newTestLedger(t, fig3Topology(t), 0.05)
	req := randHetero(stats.NewRand(5), 11, 1, 5) // more VMs than slots
	if _, _, err := AllocateHeteroSubstring(led, req, MinMaxOccupancy); !errors.Is(err, ErrNoCapacity) {
		t.Errorf("err = %v, want ErrNoCapacity", err)
	}
}

func TestHeteroExactLimits(t *testing.T) {
	led := newTestLedger(t, fig3Topology(t), 0.05)
	big := randHetero(stats.NewRand(7), MaxExactHeteroVMs+1, 1, 5)
	if _, _, err := AllocateHeteroExact(led, big); !errors.Is(err, ErrBadRequest) {
		t.Errorf("err = %v, want ErrBadRequest", err)
	}
}

// bruteForceHetero enumerates every VM-to-machine assignment and returns
// the lexicographic best (level, value), mirroring bruteForceHomog.
func bruteForceHetero(led *Ledger, req Heterogeneous) (level int, value float64, found bool) {
	tp := led.Topology()
	machines := tp.Machines()
	n := req.N()
	assign := make([]int, n)
	best := struct {
		level int
		value float64
		found bool
	}{}
	var recurse func(vm int)
	recurse = func(vm int) {
		if vm == n {
			counts := make(map[topology.NodeID][]int)
			for i, mi := range assign {
				m := machines[mi]
				counts[m] = append(counts[m], i)
			}
			var p Placement
			for m, vms := range counts {
				p.Entries = append(p.Entries, PlacementEntry{Machine: m, Count: len(vms), VMs: vms})
			}
			p.normalize()
			contribs := heteroContributions(tp, req, &p)
			if ValidatePlacement(led, contribs, &p, n) != nil {
				return
			}
			sub := enclosingSubtree(tp, &p)
			lv := tp.Node(sub).Level
			val := maxOccInSubtree(led, sub, contribs)
			if !best.found || lv < best.level || (lv == best.level && val < best.value-1e-12) {
				best.level, best.value, best.found = lv, val, true
			}
			return
		}
		for mi := range machines {
			assign[vm] = mi
			recurse(vm + 1)
		}
	}
	recurse(0)
	return best.level, best.value, best.found
}

// TestHeteroExactMatchesBruteForce cross-checks the exact subset DP against
// exhaustive assignment enumeration on small random instances.
func TestHeteroExactMatchesBruteForce(t *testing.T) {
	r := stats.NewRand(777)
	spec := topology.Spec{Children: []topology.Spec{
		{UpCap: 30, Slots: 2},
		{UpCap: 30, Slots: 2},
		{UpCap: 30, Slots: 2},
	}}
	for trial := 0; trial < 40; trial++ {
		led := newTestLedger(t, mustTopo(spec), 0.05)
		for _, link := range led.Topology().Links() {
			if r.Float64() < 0.5 {
				led.AddDet(link, r.UniformRange(0, 15))
			}
		}
		n := r.UniformInt(2, 5)
		req := randHetero(r, n, 1, 12)

		p, contribs, err := AllocateHeteroExact(led, req)
		bfLevel, bfValue, bfFound := bruteForceHetero(led, req)
		if bfFound != (err == nil) {
			t.Fatalf("trial %d: exact err=%v, brute force found=%v", trial, err, bfFound)
		}
		if err != nil {
			continue
		}
		checkHeteroPlacement(t, led, req, &p, contribs)
		sub := enclosingSubtree(led.Topology(), &p)
		lv := led.Topology().Node(sub).Level
		val := maxOccInSubtree(led, sub, contribs)
		if lv != bfLevel {
			t.Fatalf("trial %d: exact level %d, brute force %d", trial, lv, bfLevel)
		}
		if math.Abs(val-bfValue) > 1e-9 {
			t.Fatalf("trial %d: exact value %v, brute force %v", trial, val, bfValue)
		}
	}
}

// TestHeteroSubstringNeverBeatsExact: the heuristic explores a subset of
// the exact DP's placements, so when both succeed inside the same lowest
// subtree its min-max value cannot be smaller.
func TestHeteroSubstringNeverBeatsExact(t *testing.T) {
	r := stats.NewRand(2024)
	spec := topology.Spec{Children: []topology.Spec{
		{UpCap: 40, Slots: 3},
		{UpCap: 40, Slots: 3},
		{UpCap: 40, Slots: 3},
	}}
	compared := 0
	for trial := 0; trial < 60; trial++ {
		led := newTestLedger(t, mustTopo(spec), 0.05)
		for _, link := range led.Topology().Links() {
			led.AddDet(link, r.UniformRange(0, 12))
		}
		req := randHetero(r, r.UniformInt(3, 7), 1, 10)

		pe, ce, errE := AllocateHeteroExact(led, req)
		ph, ch, errH := AllocateHeteroSubstring(led, req, MinMaxOccupancy)
		if errH == nil && errE != nil {
			t.Fatalf("trial %d: heuristic succeeded where exact failed", trial)
		}
		if errE != nil || errH != nil {
			continue
		}
		checkHeteroPlacement(t, led, req, &ph, ch)
		subE := enclosingSubtree(led.Topology(), &pe)
		subH := enclosingSubtree(led.Topology(), &ph)
		lvE := led.Topology().Node(subE).Level
		lvH := led.Topology().Node(subH).Level
		if lvH < lvE {
			t.Fatalf("trial %d: heuristic level %d below exact level %d", trial, lvH, lvE)
		}
		if lvE != lvH {
			continue
		}
		valE := maxOccInSubtree(led, subE, ce)
		valH := maxOccInSubtree(led, subH, ch)
		if valE > valH+1e-9 {
			t.Fatalf("trial %d: exact value %v worse than heuristic %v", trial, valE, valH)
		}
		compared++
	}
	if compared == 0 {
		t.Fatal("no trial produced comparable placements")
	}
}

// TestHeteroSubstringEqualsHomogOnIdenticalVMs: with identical VMs,
// substrings lose no generality, so the heuristic must match the
// homogeneous DP's optimal value.
func TestHeteroSubstringEqualsHomogOnIdenticalVMs(t *testing.T) {
	r := stats.NewRand(31415)
	for trial := 0; trial < 30; trial++ {
		led := newTestLedger(t, mustTopo(smallThreeTier()), 0.05)
		for _, link := range led.Topology().Links() {
			led.AddDet(link, r.UniformRange(0, 10))
		}
		n := r.UniformInt(2, 8)
		d := stats.Normal{Mu: r.UniformRange(1, 8), Sigma: r.UniformRange(0, 3)}
		homogReq := Homogeneous{N: n, Demand: d}
		demands := make([]stats.Normal, n)
		for i := range demands {
			demands[i] = d
		}
		heteroReq := Heterogeneous{Demands: demands}

		ph, ch, errHomog := AllocateHomog(led, homogReq, MinMaxOccupancy)
		ps, cs, errSub := AllocateHeteroSubstring(led, heteroReq, MinMaxOccupancy)
		if (errHomog == nil) != (errSub == nil) {
			t.Fatalf("trial %d: homog err=%v, substring err=%v", trial, errHomog, errSub)
		}
		if errHomog != nil {
			continue
		}
		subH := enclosingSubtree(led.Topology(), &ph)
		subS := enclosingSubtree(led.Topology(), &ps)
		lvH := led.Topology().Node(subH).Level
		lvS := led.Topology().Node(subS).Level
		if lvH != lvS {
			t.Fatalf("trial %d: homog level %d, substring level %d", trial, lvH, lvS)
		}
		valH := maxOccInSubtree(led, subH, ch)
		valS := maxOccInSubtree(led, subS, cs)
		if math.Abs(valH-valS) > 1e-9 {
			t.Fatalf("trial %d: homog value %v, substring value %v", trial, valH, valS)
		}
	}
}

func TestFirstFitBasic(t *testing.T) {
	led := newTestLedger(t, mustTopo(smallThreeTier()), 0.05)
	req := randHetero(stats.NewRand(8), 6, 1, 8)
	p, contribs, err := AllocateFirstFit(led, req)
	if err != nil {
		t.Fatalf("AllocateFirstFit: %v", err)
	}
	checkHeteroPlacement(t, led, req, &p, contribs)
}

func TestFirstFitRejectsOversize(t *testing.T) {
	led := newTestLedger(t, fig3Topology(t), 0.05)
	req := randHetero(stats.NewRand(9), 11, 1, 5)
	if _, _, err := AllocateFirstFit(led, req); !errors.Is(err, ErrNoCapacity) {
		t.Errorf("err = %v, want ErrNoCapacity", err)
	}
}

// TestFirstFitAlwaysValid commits a stream of first-fit placements and
// verifies each re-validates, including under accumulating load.
func TestFirstFitAlwaysValid(t *testing.T) {
	r := stats.NewRand(10)
	led := newTestLedger(t, mustTopo(smallThreeTier()), 0.05)
	admitted := 0
	for trial := 0; trial < 60; trial++ {
		req := randHetero(r, r.UniformInt(1, 6), 1, 10)
		p, contribs, err := AllocateFirstFit(led, req)
		if err != nil {
			continue
		}
		checkHeteroPlacement(t, led, req, &p, contribs)
		commit(led, &p, contribs)
		admitted++
	}
	if admitted == 0 {
		t.Fatal("first fit admitted nothing")
	}
}

// TestHeteroSubstringOccupancyBeatsFirstFitOnAverage reproduces the
// paper's Section VI-B3 claim in aggregate: across a seeded stream of
// requests, the substring heuristic's post-allocation max occupancy is no
// worse on average than first fit's.
func TestHeteroSubstringOccupancyBeatsFirstFitOnAverage(t *testing.T) {
	run := func(useFF bool) (float64, int) {
		r := stats.NewRand(424242)
		led := newTestLedger(t, mustTopo(smallThreeTier()), 0.05)
		var occSum float64
		count, admitted := 0, 0
		for trial := 0; trial < 40; trial++ {
			req := randHetero(r, r.UniformInt(2, 6), 1, 6)
			var (
				p        Placement
				contribs []linkDemand
				err      error
			)
			if useFF {
				p, contribs, err = AllocateFirstFit(led, req)
			} else {
				p, contribs, err = AllocateHeteroSubstring(led, req, MinMaxOccupancy)
			}
			if err != nil {
				continue
			}
			commit(led, &p, contribs)
			admitted++
			occSum += led.MaxOccupancy()
			count++
		}
		return occSum / float64(count), admitted
	}
	subOcc, subAdmitted := run(false)
	ffOcc, ffAdmitted := run(true)
	if subAdmitted == 0 || ffAdmitted == 0 {
		t.Fatalf("admissions: substring=%d, first fit=%d", subAdmitted, ffAdmitted)
	}
	if subOcc > ffOcc+1e-9 {
		t.Errorf("substring mean max occupancy %v worse than first fit %v", subOcc, ffOcc)
	}
}
