// Package core implements the SVC paper's primary contribution: the
// Stochastic Virtual Cluster abstraction, the probabilistic bandwidth
// guarantee on physical links, and the VM allocation algorithms
// (the homogeneous min-max dynamic program of Algorithm 1, the exact and
// substring-heuristic heterogeneous allocators) together with the paper's
// baselines (adapted TIVC, first-fit) and the network manager that applies
// them.
package core

import (
	"errors"
	"fmt"

	"repro/internal/stats"
)

// Percentile95 is the quantile used to derive percentile-VC requests and to
// order heterogeneous VMs, following the paper's use of the 95th percentile.
const Percentile95 = 0.95

var (
	// ErrBadRequest reports a structurally invalid tenant request.
	ErrBadRequest = errors.New("core: invalid request")
	// ErrNoCapacity reports that no valid allocation exists for a request
	// under the current datacenter state (the request is rejected).
	ErrNoCapacity = errors.New("core: request cannot be allocated")
)

// Homogeneous is a virtual cluster request <N, mu, sigma> whose N VMs all
// share the per-VM bandwidth demand distribution N(mu, sigma^2). With
// Sigma == 0 it degenerates to the deterministic Oktopus virtual cluster
// <N, B>, which the framework reserves exactly rather than statistically.
type Homogeneous struct {
	N      int
	Demand stats.Normal
}

// NewHomogeneous returns a homogeneous SVC request, validating its shape.
func NewHomogeneous(n int, demand stats.Normal) (Homogeneous, error) {
	r := Homogeneous{N: n, Demand: demand}
	if err := r.Validate(); err != nil {
		return Homogeneous{}, err
	}
	return r, nil
}

// NewDeterministic returns the deterministic virtual cluster <N, B> of
// Oktopus, expressed as a degenerate SVC request.
func NewDeterministic(n int, bandwidth float64) (Homogeneous, error) {
	return NewHomogeneous(n, stats.Normal{Mu: bandwidth})
}

// MeanVC derives the deterministic mean-VC request from a stochastic
// demand profile: the requested constant bandwidth is the profile mean.
func MeanVC(n int, profile stats.Normal) (Homogeneous, error) {
	return NewDeterministic(n, profile.Mu)
}

// PercentileVC derives the deterministic percentile-VC request from a
// stochastic demand profile: the requested constant bandwidth is the
// profile's 95th percentile.
func PercentileVC(n int, profile stats.Normal) (Homogeneous, error) {
	return NewDeterministic(n, profile.Quantile(Percentile95))
}

// Validate checks the request shape.
func (r Homogeneous) Validate() error {
	switch {
	case r.N < 1:
		return fmt.Errorf("%w: N = %d", ErrBadRequest, r.N)
	case r.Demand.Mu < 0:
		return fmt.Errorf("%w: negative demand mean %v", ErrBadRequest, r.Demand.Mu)
	case r.Demand.Sigma < 0:
		return fmt.Errorf("%w: negative demand sigma %v", ErrBadRequest, r.Demand.Sigma)
	}
	return nil
}

// Deterministic reports whether the request carries no demand uncertainty.
func (r Homogeneous) Deterministic() bool { return r.Demand.Sigma == 0 }

// String implements fmt.Stringer.
func (r Homogeneous) String() string {
	if r.Deterministic() {
		return fmt.Sprintf("VC<N=%d, B=%.4g>", r.N, r.Demand.Mu)
	}
	return fmt.Sprintf("SVC<N=%d, %v>", r.N, r.Demand)
}

// Heterogeneous is a virtual cluster request whose VMs may each follow a
// different bandwidth demand distribution (paper Section V).
type Heterogeneous struct {
	Demands []stats.Normal
}

// NewHeterogeneous returns a heterogeneous SVC request over a copy of the
// given per-VM demand distributions.
func NewHeterogeneous(demands []stats.Normal) (Heterogeneous, error) {
	r := Heterogeneous{Demands: make([]stats.Normal, len(demands))}
	copy(r.Demands, demands)
	if err := r.Validate(); err != nil {
		return Heterogeneous{}, err
	}
	return r, nil
}

// Validate checks the request shape.
func (r Heterogeneous) Validate() error {
	if len(r.Demands) < 1 {
		return fmt.Errorf("%w: no VMs", ErrBadRequest)
	}
	for i, d := range r.Demands {
		if d.Mu < 0 || d.Sigma < 0 {
			return fmt.Errorf("%w: VM %d has demand %v", ErrBadRequest, i, d)
		}
	}
	return nil
}

// N returns the number of VMs in the request.
func (r Heterogeneous) N() int { return len(r.Demands) }

// String implements fmt.Stringer.
func (r Heterogeneous) String() string {
	return fmt.Sprintf("SVC<N=%d, heterogeneous>", r.N())
}
