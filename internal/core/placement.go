package core

import (
	"fmt"
	"sort"

	"repro/internal/stats"
	"repro/internal/topology"
)

// Placement describes where a request's VMs were allocated: how many VMs —
// and for heterogeneous requests, exactly which VM indices — landed on each
// machine.
type Placement struct {
	Entries []PlacementEntry
}

// PlacementEntry is the allocation on one machine. For heterogeneous
// requests VMs lists the indices of the request's VMs placed here and
// len(VMs) == Count; for homogeneous requests VMs is nil because the VMs
// are indistinguishable.
type PlacementEntry struct {
	Machine topology.NodeID
	Count   int
	VMs     []int
}

// TotalVMs returns the number of VMs placed.
func (p *Placement) TotalVMs() int {
	total := 0
	for _, e := range p.Entries {
		total += e.Count
	}
	return total
}

// Machines returns the distinct machines used, in entry order.
func (p *Placement) Machines() []topology.NodeID {
	ms := make([]topology.NodeID, len(p.Entries))
	for i, e := range p.Entries {
		ms[i] = e.Machine
	}
	return ms
}

// Clone returns an independent deep copy of the placement.
func (p *Placement) Clone() Placement {
	entries := make([]PlacementEntry, len(p.Entries))
	copy(entries, p.Entries)
	for i := range entries {
		if entries[i].VMs != nil {
			vms := make([]int, len(entries[i].VMs))
			copy(vms, entries[i].VMs)
			entries[i].VMs = vms
		}
	}
	return Placement{Entries: entries}
}

// String implements fmt.Stringer.
func (p *Placement) String() string {
	s := fmt.Sprintf("placement of %d VMs on %d machines:", p.TotalVMs(), len(p.Entries))
	for _, e := range p.Entries {
		s += fmt.Sprintf(" m%d=%d", e.Machine, e.Count)
	}
	return s
}

// normalize merges duplicate machine entries and sorts by machine ID, so
// that placements compare deterministically.
func (p *Placement) normalize() {
	byMachine := make(map[topology.NodeID]*PlacementEntry, len(p.Entries))
	var order []topology.NodeID
	for _, e := range p.Entries {
		if e.Count == 0 {
			continue
		}
		if cur, ok := byMachine[e.Machine]; ok {
			cur.Count += e.Count
			cur.VMs = append(cur.VMs, e.VMs...)
			continue
		}
		ec := e
		byMachine[e.Machine] = &ec
		order = append(order, e.Machine)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })
	entries := make([]PlacementEntry, 0, len(order))
	for _, m := range order {
		entries = append(entries, *byMachine[m])
	}
	p.Entries = entries
}

// linkDemand is one request's crossing-demand contribution to one link,
// remembered so that Release can undo exactly what Allocate added.
type linkDemand struct {
	link   topology.LinkID
	demand stats.Normal
	det    bool
}

// commit applies the contributions and slot usage of a placement to the
// ledger. det selects deterministic (D_L) versus stochastic bookkeeping.
func commit(led *Ledger, p *Placement, contribs []linkDemand) {
	for _, e := range p.Entries {
		led.UseSlots(e.Machine, e.Count)
	}
	for _, c := range contribs {
		if c.det {
			led.AddDet(c.link, c.demand.Mu)
		} else {
			led.AddStochastic(c.link, c.demand)
		}
	}
}

// rollback undoes commit.
func rollback(led *Ledger, p *Placement, contribs []linkDemand) {
	for _, e := range p.Entries {
		led.ReleaseSlots(e.Machine, e.Count)
	}
	for _, c := range contribs {
		if c.det {
			led.RemoveDet(c.link, c.demand.Mu)
		} else {
			led.RemoveStochastic(c.link, c.demand)
		}
	}
}

// vmsInsideLink returns, for every link, how many of the placement's VMs
// lie in the subtree below it. Links not on any used machine's root path
// are absent from the map (zero VMs inside).
func vmsInsideLink(topo *topology.Topology, p *Placement) map[topology.LinkID]int {
	inside := make(map[topology.LinkID]int)
	for _, e := range p.Entries {
		for _, link := range topo.PathToRoot(e.Machine) {
			inside[link] += e.Count
		}
	}
	return inside
}

// homogContributions computes the per-link crossing-demand contributions of
// a homogeneous placement (zero-demand links omitted).
func homogContributions(topo *topology.Topology, req Homogeneous, p *Placement) []linkDemand {
	var contribs []linkDemand
	det := req.Deterministic()
	for link, m := range vmsInsideLink(topo, p) {
		d := CrossingHomog(req.Demand, m, req.N)
		if isZero(d) {
			continue
		}
		contribs = append(contribs, linkDemand{link: link, demand: d, det: det})
	}
	sortLinkDemands(contribs)
	return contribs
}

// sortLinkDemands orders contributions by link ID. The maps the builders
// aggregate over iterate in random order; sorting makes the committed
// mutation — and therefore the journal bytes and every exported state —
// deterministic for a given placement.
func sortLinkDemands(cs []linkDemand) {
	sort.Slice(cs, func(i, j int) bool { return cs[i].link < cs[j].link })
}

// heteroContributions computes the per-link crossing-demand contributions
// of a heterogeneous placement.
func heteroContributions(topo *topology.Topology, req Heterogeneous, p *Placement) []linkDemand {
	// Aggregate the inside-group demand per link.
	type agg struct {
		mu, vr float64
		n      int
	}
	inside := make(map[topology.LinkID]agg)
	var totalMu, totalVar float64
	for _, d := range req.Demands {
		totalMu += d.Mu
		totalVar += d.Var()
	}
	for _, e := range p.Entries {
		var mu, vr float64
		for _, vm := range e.VMs {
			mu += req.Demands[vm].Mu
			vr += req.Demands[vm].Var()
		}
		for _, link := range topo.PathToRoot(e.Machine) {
			a := inside[link]
			a.mu += mu
			a.vr += vr
			a.n += e.Count
			inside[link] = a
		}
	}
	var contribs []linkDemand
	for link, a := range inside {
		// Count the split exactly, like CrossingHomog does: a link with
		// every VM of the group below it carries no crossing traffic.
		// Deciding this from the float sums instead (totalMu - a.mu)
		// leaves a summation-order residue, and the moment-matched min
		// against that near-degenerate "outside" can even dip below zero.
		if a.n >= len(req.Demands) {
			continue
		}
		in := stats.Normal{Mu: a.mu, Sigma: sqrtNonNeg(a.vr)}
		out := stats.Normal{Mu: totalMu - a.mu, Sigma: sqrtNonNeg(totalVar - a.vr)}
		d := CrossingSets(in, out)
		if isZero(d) {
			continue
		}
		// min(inside, outside) is a nonnegative bandwidth; clamp the rare
		// slightly-negative mean the normal approximation of min yields
		// when one side's mass sits far below the other, so the ledger's
		// per-link sums (validated nonnegative on restore) stay sound.
		if d.Mu < 0 {
			d.Mu = 0
		}
		contribs = append(contribs, linkDemand{link: link, demand: d})
	}
	sortLinkDemands(contribs)
	return contribs
}

// ValidatePlacement independently re-checks a placement against the ledger
// state *before* the placement is committed: machine slot limits, VM count,
// and the admission condition O_L < 1 on every affected link. It is the
// invariant checker used by tests and by the paper-facing examples; the
// allocators must never produce a placement that fails it.
func ValidatePlacement(led *Ledger, contribs []linkDemand, p *Placement, wantVMs int) error {
	if got := p.TotalVMs(); got != wantVMs {
		return fmt.Errorf("core: placement has %d VMs, want %d", got, wantVMs)
	}
	seen := make(map[topology.NodeID]bool, len(p.Entries))
	for _, e := range p.Entries {
		if seen[e.Machine] {
			return fmt.Errorf("core: duplicate machine %d in placement", e.Machine)
		}
		seen[e.Machine] = true
		if !led.Topology().Node(e.Machine).IsMachine() {
			return fmt.Errorf("core: node %d is not a machine", e.Machine)
		}
		if e.Count <= 0 {
			return fmt.Errorf("core: non-positive count %d on machine %d", e.Count, e.Machine)
		}
		if free := led.FreeSlots(e.Machine); e.Count > free {
			return fmt.Errorf("core: machine %d needs %d slots, has %d free", e.Machine, e.Count, free)
		}
		if e.VMs != nil && len(e.VMs) != e.Count {
			return fmt.Errorf("core: machine %d lists %d VMs for count %d", e.Machine, len(e.VMs), e.Count)
		}
	}
	for _, c := range contribs {
		var occ float64
		if c.det {
			occ = led.OccupancyWithDet(c.link, c.demand.Mu)
		} else {
			occ = led.OccupancyWith(c.link, c.demand)
		}
		if occ >= 1 {
			return fmt.Errorf("core: link %d would reach occupancy %v >= 1", c.link, occ)
		}
	}
	return nil
}

// Spread summarizes a placement's locality footprint: how many machines
// and racks it touches and the level of the lowest subtree enclosing it
// (0 = a single machine). Better locality (smaller spread) conserves
// upper-level bandwidth for future tenants.
type Spread struct {
	Machines int
	Racks    int // distinct level-1 ancestors (machines' direct parents)
	Level    int // level of the lowest enclosing subtree
}

// PlacementSpread computes the spread of a placement on a topology.
func PlacementSpread(topo *topology.Topology, p *Placement) Spread {
	s := Spread{Machines: len(p.Entries)}
	racks := make(map[topology.NodeID]bool)
	for _, e := range p.Entries {
		if parent := topo.Node(e.Machine).Parent; parent != topology.None {
			racks[parent] = true
		}
	}
	s.Racks = len(racks)
	if sub := EnclosingSubtree(topo, p); sub != topology.None {
		s.Level = topo.Node(sub).Level
	}
	return s
}

// EnclosingSubtree returns the root of the lowest subtree containing every
// machine of the placement, or topology.None for an empty placement.
func EnclosingSubtree(topo *topology.Topology, p *Placement) topology.NodeID {
	if len(p.Entries) == 0 {
		return topology.None
	}
	cur := p.Entries[0].Machine
	for _, e := range p.Entries[1:] {
		for cur != e.Machine && !nodeIsAncestor(topo, cur, e.Machine) {
			cur = topo.Node(cur).Parent
		}
	}
	return cur
}

func nodeIsAncestor(topo *topology.Topology, anc, n topology.NodeID) bool {
	for n != topology.None {
		if n == anc {
			return true
		}
		n = topo.Node(n).Parent
	}
	return false
}
