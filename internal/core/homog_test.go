package core

import (
	"errors"
	"math"
	"testing"

	"repro/internal/stats"
	"repro/internal/topology"
)

// mustTopo builds a topology from a spec, panicking on error so helpers can
// be shared with quick properties.
func mustTopo(spec topology.Spec) *topology.Topology {
	tp, err := topology.NewFromSpec(spec)
	if err != nil {
		panic(err)
	}
	return tp
}

// threeMachineSpec: one switch over three machines, 3 slots each, link
// capacity 50. Used to separate min-max from first-feasible behaviour.
func threeMachineSpec() topology.Spec {
	return topology.Spec{Children: []topology.Spec{
		{UpCap: 50, Slots: 3},
		{UpCap: 50, Slots: 3},
		{UpCap: 50, Slots: 3},
	}}
}

// smallThreeTier: 2 racks x 2 machines x 3 slots; host links 30, rack
// uplinks 40.
func smallThreeTier() topology.Spec {
	rack := func() topology.Spec {
		return topology.Spec{UpCap: 40, Children: []topology.Spec{
			{UpCap: 30, Slots: 3},
			{UpCap: 30, Slots: 3},
		}}
	}
	return topology.Spec{Children: []topology.Spec{rack(), rack()}}
}

// placementCounts returns machine -> VM count.
func placementCounts(p *Placement) map[topology.NodeID]int {
	m := make(map[topology.NodeID]int)
	for _, e := range p.Entries {
		m[e.Machine] = e.Count
	}
	return m
}

// enclosingSubtree returns the root of the lowest subtree containing every
// machine of the placement.
func enclosingSubtree(tp *topology.Topology, p *Placement) topology.NodeID {
	machines := p.Machines()
	cur := machines[0]
	for _, m := range machines[1:] {
		for cur != m && !isAncestor(tp, cur, m) {
			cur = tp.Node(cur).Parent
		}
	}
	return cur
}

func isAncestor(tp *topology.Topology, anc, n topology.NodeID) bool {
	for n != topology.None {
		if n == anc {
			return true
		}
		n = tp.Node(n).Parent
	}
	return false
}

// maxOccInSubtree computes the maximum post-allocation occupancy over the
// links strictly inside the subtree rooted at sub, mirroring the DP's
// objective.
func maxOccInSubtree(led *Ledger, sub topology.NodeID, contribs []linkDemand) float64 {
	tp := led.Topology()
	contrib := make(map[topology.LinkID]linkDemand, len(contribs))
	for _, c := range contribs {
		contrib[c.link] = c
	}
	maxOcc := 0.0
	var walk func(v topology.NodeID)
	walk = func(v topology.NodeID) {
		for _, c := range tp.Node(v).Children {
			var occ float64
			if d, ok := contrib[c]; ok {
				if d.det {
					occ = led.OccupancyWithDet(c, d.demand.Mu)
				} else {
					occ = led.OccupancyWith(c, d.demand)
				}
			} else {
				occ = led.Occupancy(c)
			}
			if occ > maxOcc {
				maxOcc = occ
			}
			walk(c)
		}
	}
	walk(sub)
	return maxOcc
}

func TestHomogSingleMachineHostsWholeRequest(t *testing.T) {
	led := newTestLedger(t, fig3Topology(t), 0.05)
	req, _ := NewHomogeneous(4, stats.Normal{Mu: 100, Sigma: 30})
	p, contribs, err := AllocateHomog(led, req, MinMaxOccupancy)
	if err != nil {
		t.Fatalf("AllocateHomog: %v", err)
	}
	if len(p.Entries) != 1 || p.Entries[0].Count != 4 {
		t.Errorf("placement = %v, want all 4 VMs on one machine", &p)
	}
	if len(contribs) != 0 {
		t.Errorf("contribs = %v, want none (same-machine VMs use no links)", contribs)
	}
}

// TestHomogFig3Example allocates the paper's Fig. 3 request <N=6, B=10> and
// checks the min-max algorithm picks the cheapest split (1, 5): reserved
// bandwidth min(1,5)*10 = 10, occupancy 0.2 — strictly better than the
// paper's illustrated (2,4) and (3,3) splits.
func TestHomogFig3Example(t *testing.T) {
	led := newTestLedger(t, fig3Topology(t), 0.05)
	req, _ := NewDeterministic(6, 10)
	p, contribs, err := AllocateHomog(led, req, MinMaxOccupancy)
	if err != nil {
		t.Fatalf("AllocateHomog: %v", err)
	}
	if err := ValidatePlacement(led, contribs, &p, 6); err != nil {
		t.Fatalf("invalid placement: %v", err)
	}
	counts := placementCounts(&p)
	var sizes []int
	for _, c := range counts {
		sizes = append(sizes, c)
	}
	if len(sizes) != 2 || min(sizes[0], sizes[1]) != 1 {
		t.Errorf("split = %v, want {1, 5}", sizes)
	}
	sub := enclosingSubtree(led.Topology(), &p)
	if got := maxOccInSubtree(led, sub, contribs); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("max occupancy = %v, want 0.2", got)
	}
}

// TestHomogMinMaxBeatsFirstFeasible reproduces the paper's motivating
// observation: with background load the TIVC-style first-feasible split can
// be strictly worse in bandwidth occupancy than the min-max optimal one.
func TestHomogMinMaxBeatsFirstFeasible(t *testing.T) {
	req, _ := NewDeterministic(6, 10)
	run := func(policy Policy) float64 {
		led := newTestLedger(t, mustTopo(threeMachineSpec()), 0.05)
		led.AddDet(led.Topology().Machines()[2], 30) // background load on machine C's link
		p, contribs, err := AllocateHomog(led, req, policy)
		if err != nil {
			t.Fatalf("AllocateHomog(%v): %v", policy, err)
		}
		if err := ValidatePlacement(led, contribs, &p, 6); err != nil {
			t.Fatalf("invalid placement under %v: %v", policy, err)
		}
		return maxOccInSubtree(led, led.Topology().Root(), contribs)
	}
	minmax := run(MinMaxOccupancy)
	tivc := run(FirstFeasible)
	if math.Abs(minmax-0.6) > 1e-12 {
		t.Errorf("min-max occupancy = %v, want 0.6 (split 3/3/0)", minmax)
	}
	if tivc <= minmax {
		t.Errorf("first-feasible occupancy = %v, want > %v", tivc, minmax)
	}
}

// TestHomogLocality checks that a request fitting in one rack never
// reserves bandwidth above that rack.
func TestHomogLocality(t *testing.T) {
	led := newTestLedger(t, mustTopo(smallThreeTier()), 0.05)
	req, _ := NewHomogeneous(5, stats.Normal{Mu: 10, Sigma: 3})
	p, contribs, err := AllocateHomog(led, req, MinMaxOccupancy)
	if err != nil {
		t.Fatalf("AllocateHomog: %v", err)
	}
	tp := led.Topology()
	sub := enclosingSubtree(tp, &p)
	if tp.Node(sub).Level != 1 {
		t.Errorf("enclosing subtree level = %d, want 1 (one rack)", tp.Node(sub).Level)
	}
	for _, c := range contribs {
		if !isAncestor(tp, sub, c.link) || c.link == sub {
			t.Errorf("contribution on link %d outside the rack subtree", c.link)
		}
	}
}

func TestHomogRejectsWhenNoSlots(t *testing.T) {
	led := newTestLedger(t, fig3Topology(t), 0.05)
	req, _ := NewHomogeneous(11, stats.Normal{Mu: 1, Sigma: 0.1})
	if _, _, err := AllocateHomog(led, req, MinMaxOccupancy); !errors.Is(err, ErrNoCapacity) {
		t.Errorf("err = %v, want ErrNoCapacity", err)
	}
}

func TestHomogRejectsWhenNoBandwidth(t *testing.T) {
	led := newTestLedger(t, fig3Topology(t), 0.05)
	// 6 VMs cannot fit in one machine, and any split reserves at least
	// min(1,5)*45 = 45; preload 10 on both links so 45 + 10 >= 50 fails.
	for _, m := range led.Topology().Machines() {
		led.AddDet(m, 10)
	}
	req, _ := NewDeterministic(6, 45)
	if _, _, err := AllocateHomog(led, req, MinMaxOccupancy); !errors.Is(err, ErrNoCapacity) {
		t.Errorf("err = %v, want ErrNoCapacity", err)
	}
}

func TestHomogInvalidRequest(t *testing.T) {
	led := newTestLedger(t, fig3Topology(t), 0.05)
	if _, _, err := AllocateHomog(led, Homogeneous{N: 0}, MinMaxOccupancy); !errors.Is(err, ErrBadRequest) {
		t.Errorf("err = %v, want ErrBadRequest", err)
	}
}

// bruteForceHomog enumerates every slot-respecting distribution of the
// request's VMs over the machines, keeps the valid ones, and returns the
// lexicographic best (enclosing-subtree level, max in-subtree occupancy).
func bruteForceHomog(led *Ledger, req Homogeneous) (level int, value float64, found bool) {
	tp := led.Topology()
	machines := tp.Machines()
	best := struct {
		level int
		value float64
		found bool
	}{}
	counts := make([]int, len(machines))
	var recurse func(i, left int)
	recurse = func(i, left int) {
		if i == len(machines) {
			if left != 0 {
				return
			}
			var p Placement
			for j, c := range counts {
				if c > 0 {
					p.Entries = append(p.Entries, PlacementEntry{Machine: machines[j], Count: c})
				}
			}
			if p.TotalVMs() == 0 {
				return
			}
			contribs := homogContributions(tp, req, &p)
			if ValidatePlacement(led, contribs, &p, req.N) != nil {
				return
			}
			sub := enclosingSubtree(tp, &p)
			lv := tp.Node(sub).Level
			val := maxOccInSubtree(led, sub, contribs)
			if !best.found || lv < best.level || (lv == best.level && val < best.value-1e-12) {
				best.level, best.value, best.found = lv, val, true
			}
			return
		}
		maxHere := min(left, led.FreeSlots(machines[i]))
		for c := 0; c <= maxHere; c++ {
			counts[i] = c
			recurse(i+1, left-c)
		}
		counts[i] = 0
	}
	recurse(0, req.N)
	return best.level, best.value, best.found
}

// TestHomogMatchesBruteForce cross-checks the DP against exhaustive search
// on randomized small instances: same feasibility, same subtree level, and
// the same optimal min-max occupancy value.
func TestHomogMatchesBruteForce(t *testing.T) {
	r := stats.NewRand(12345)
	for trial := 0; trial < 120; trial++ {
		led := newTestLedger(t, mustTopo(smallThreeTier()), 0.05)
		// Random background state: deterministic preloads plus a couple of
		// stochastic demands, all below capacity.
		for _, link := range led.Topology().Links() {
			if r.Float64() < 0.5 {
				led.AddDet(link, r.UniformRange(0, 0.5*led.Topology().LinkCap(link)))
			}
			if r.Float64() < 0.3 {
				led.AddStochastic(link, stats.Normal{
					Mu:    r.UniformRange(0, 5),
					Sigma: r.UniformRange(0, 3),
				})
			}
		}
		// Random pre-used slots.
		for _, m := range led.Topology().Machines() {
			led.UseSlots(m, r.IntN(3))
		}
		n := r.UniformInt(2, 8)
		demand := stats.Normal{Mu: r.UniformRange(1, 8), Sigma: r.UniformRange(0, 4)}
		if r.Float64() < 0.3 {
			demand.Sigma = 0 // exercise the deterministic path too
		}
		req := Homogeneous{N: n, Demand: demand}

		p, contribs, err := AllocateHomog(led, req, MinMaxOccupancy)
		bfLevel, bfValue, bfFound := bruteForceHomog(led, req)

		if bfFound != (err == nil) {
			t.Fatalf("trial %d: DP err=%v, brute force found=%v (req %v)", trial, err, bfFound, req)
		}
		if err != nil {
			continue
		}
		if verr := ValidatePlacement(led, contribs, &p, n); verr != nil {
			t.Fatalf("trial %d: invalid DP placement: %v", trial, verr)
		}
		sub := enclosingSubtree(led.Topology(), &p)
		dpLevel := led.Topology().Node(sub).Level
		dpValue := maxOccInSubtree(led, sub, contribs)
		if dpLevel != bfLevel {
			t.Fatalf("trial %d: DP level %d, brute force %d (req %v)", trial, dpLevel, bfLevel, req)
		}
		if math.Abs(dpValue-bfValue) > 1e-9 {
			t.Fatalf("trial %d: DP value %v, brute force %v (req %v)", trial, dpValue, bfValue, req)
		}
	}
}

// TestHomogFirstFeasibleValid: the adapted TIVC policy must still only
// produce valid placements.
func TestHomogFirstFeasibleValid(t *testing.T) {
	r := stats.NewRand(999)
	led := newTestLedger(t, mustTopo(smallThreeTier()), 0.05)
	for trial := 0; trial < 50; trial++ {
		n := r.UniformInt(1, 6)
		req := Homogeneous{N: n, Demand: stats.Normal{Mu: r.UniformRange(1, 6), Sigma: r.UniformRange(0, 2)}}
		p, contribs, err := AllocateHomog(led, req, FirstFeasible)
		if err != nil {
			continue
		}
		if verr := ValidatePlacement(led, contribs, &p, n); verr != nil {
			t.Fatalf("trial %d: invalid placement: %v", trial, verr)
		}
		commit(led, &p, contribs)
	}
}

// TestStochasticPacksMoreThanPercentile demonstrates the paper's core
// multiplexing claim: on a link of fixed capacity, more SVC demands
// N(100, 50^2) fit under the probabilistic condition (eps = 0.05) than
// percentile-VC reservations of the same profile, because effective
// bandwidth grows as mu*k + c*sigma*sqrt(k) rather than linearly in the
// 95th percentile.
func TestStochasticPacksMoreThanPercentile(t *testing.T) {
	profile := stats.Normal{Mu: 100, Sigma: 50}
	spec := topology.Spec{Children: []topology.Spec{
		{UpCap: 2000, Slots: 1},
		{UpCap: 2000, Slots: 1},
	}}
	link := topology.NodeID(1)

	countSVC := func() int {
		led := newTestLedger(t, mustTopo(spec), 0.05)
		for k := 0; ; k++ {
			if led.OccupancyWith(link, profile) >= 1 {
				return k
			}
			led.AddStochastic(link, profile)
		}
	}
	countPct := func() int {
		led := newTestLedger(t, mustTopo(spec), 0.05)
		b := profile.Quantile(Percentile95)
		for k := 0; ; k++ {
			if led.OccupancyWithDet(link, b) >= 1 {
				return k
			}
			led.AddDet(link, b)
		}
	}
	svc, pct := countSVC(), countPct()
	// Analytically: percentile-VC fits floor(2000/182.2) = 10 demands;
	// SVC fits 16 (16*100 + 1.645*50*4 = 1929 < 2000).
	if pct != 10 {
		t.Errorf("percentile-VC packed %d, want 10", pct)
	}
	if svc != 16 {
		t.Errorf("SVC packed %d, want 16", svc)
	}
	if svc <= pct {
		t.Errorf("SVC packed %d <= percentile-VC %d", svc, pct)
	}
}

// TestGreedyPackMaximizesLocality: the Oktopus-style policy fills the
// leftmost machine as full as possible before spilling over.
func TestGreedyPackMaximizesLocality(t *testing.T) {
	led := newTestLedger(t, fig3Topology(t), 0.05)
	req, _ := NewDeterministic(6, 1) // bandwidth loose: slots bind
	p, contribs, err := AllocateHomog(led, req, GreedyPack)
	if err != nil {
		t.Fatalf("AllocateHomog: %v", err)
	}
	if err := ValidatePlacement(led, contribs, &p, 6); err != nil {
		t.Fatalf("invalid placement: %v", err)
	}
	counts := placementCounts(&p)
	var max int
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max != 5 {
		t.Errorf("largest machine share = %d, want 5 (greedy packing)", max)
	}
}

func TestPolicyStrings(t *testing.T) {
	for _, p := range []Policy{MinMaxOccupancy, FirstFeasible, GreedyPack, Policy(42)} {
		if p.String() == "" {
			t.Errorf("empty String for policy %d", int(p))
		}
	}
}

// TestGreedyPackValidUnderLoad: greedy packing still only returns valid
// placements when bandwidth binds.
func TestGreedyPackValidUnderLoad(t *testing.T) {
	r := stats.NewRand(777)
	led := newTestLedger(t, mustTopo(smallThreeTier()), 0.05)
	for trial := 0; trial < 40; trial++ {
		n := r.UniformInt(1, 7)
		req := Homogeneous{N: n, Demand: stats.Normal{Mu: r.UniformRange(1, 7), Sigma: r.UniformRange(0, 3)}}
		p, contribs, err := AllocateHomog(led, req, GreedyPack)
		if err != nil {
			continue
		}
		if verr := ValidatePlacement(led, contribs, &p, n); verr != nil {
			t.Fatalf("trial %d: invalid greedy placement: %v", trial, verr)
		}
		commit(led, &p, contribs)
	}
}
