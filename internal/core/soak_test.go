package core

import (
	"testing"

	"repro/internal/stats"
	"repro/internal/topology"
)

// TestSoakPaperScaleChurn drives the manager through thousands of
// allocate/release cycles on the full 1,000-machine datacenter, holding the
// global invariants the whole way: every link admissible, slot accounting
// exact, and a clean return to the empty state. Skipped with -short.
func TestSoakPaperScaleChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test skipped with -short")
	}
	topo, err := topology.NewThreeTier(topology.PaperConfig())
	if err != nil {
		t.Fatalf("topology: %v", err)
	}
	m, err := NewManager(topo, 0.05)
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	r := stats.NewRand(20140704)
	var live []JobID
	allocated, released := 0, 0
	for round := 0; round < 3000; round++ {
		if len(live) > 0 && (r.Float64() < 0.48 || len(live) > 120) {
			i := r.IntN(len(live))
			if err := m.Release(live[i]); err != nil {
				t.Fatalf("round %d: Release: %v", round, err)
			}
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
			released++
			continue
		}
		mu := r.Pick([]float64{100, 200, 300, 400, 500})
		req := Homogeneous{
			N:      r.UniformInt(2, 80),
			Demand: stats.Normal{Mu: mu, Sigma: r.Float64() * 0.55 * mu},
		}
		var a *Allocation
		if r.Float64() < 0.15 {
			// Mix in deterministic tenants.
			det, derr := MeanVC(req.N, req.Demand)
			if derr != nil {
				t.Fatalf("round %d: MeanVC: %v", round, derr)
			}
			a, err = m.AllocateHomog(det)
		} else {
			a, err = m.AllocateHomog(req)
		}
		if err != nil {
			continue
		}
		live = append(live, a.ID)
		allocated++
		if round%500 == 0 {
			for _, link := range topo.Links() {
				if occ := m.Ledger().Occupancy(link); occ >= 1 {
					t.Fatalf("round %d: link %d occupancy %v >= 1", round, link, occ)
				}
			}
		}
	}
	for _, id := range live {
		if err := m.Release(id); err != nil {
			t.Fatalf("drain: %v", err)
		}
	}
	if got := m.FreeSlots(); got != topo.TotalSlots() {
		t.Errorf("FreeSlots after drain = %d, want %d", got, topo.TotalSlots())
	}
	if got := m.MaxOccupancy(); got > 1e-6 {
		t.Errorf("MaxOccupancy after drain = %v, want ~0", got)
	}
	t.Logf("soak: %d allocations, %d mid-run releases", allocated, released)
}
