//go:build !invariants

package core

// invariantsEnabled gates runtime assertions that are too hot for
// production builds; see invariants_on.go.
const invariantsEnabled = false

func (m *Manager) assertOccupancyLocked(mut *Mutation) {}
