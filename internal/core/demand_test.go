package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/stats"
)

func TestCrossingHomogBoundary(t *testing.T) {
	d := stats.Normal{Mu: 100, Sigma: 30}
	for _, m := range []int{0, 10, -1, 15} {
		if got := CrossingHomog(d, m, 10); !isZero(got) {
			t.Errorf("CrossingHomog(m=%d, n=10) = %v, want zero", m, got)
		}
	}
}

func TestCrossingHomogDeterministic(t *testing.T) {
	d := stats.Normal{Mu: 10} // the paper's Fig. 3 request bandwidth
	got := CrossingHomog(d, 2, 6)
	if got.Mu != 20 || got.Sigma != 0 {
		t.Errorf("det crossing(2,6) = %v, want N(20, 0)", got)
	}
	got = CrossingHomog(d, 3, 6)
	if got.Mu != 30 || got.Sigma != 0 {
		t.Errorf("det crossing(3,6) = %v, want N(30, 0)", got)
	}
}

// TestCrossingHomogSymmetric checks crossing(m) == crossing(n-m), since the
// link sees the min of the two sides either way.
func TestCrossingHomogSymmetric(t *testing.T) {
	f := func(mRaw, nRaw uint8, muRaw, sigmaRaw uint8) bool {
		n := int(nRaw)%60 + 2
		m := int(mRaw) % (n + 1)
		d := stats.Normal{Mu: float64(muRaw) + 1, Sigma: float64(sigmaRaw) / 8}
		a := CrossingHomog(d, m, n)
		b := CrossingHomog(d, n-m, n)
		return math.Abs(a.Mu-b.Mu) < 1e-9*(1+math.Abs(a.Mu)) &&
			math.Abs(a.Sigma-b.Sigma) < 1e-9*(1+a.Sigma)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestCrossingHomogBelowSmallerSide checks the crossing mean never exceeds
// the smaller side's aggregate mean (the min can only pull it down).
func TestCrossingHomogBelowSmallerSide(t *testing.T) {
	f := func(mRaw, nRaw uint8, sigmaRaw uint8) bool {
		n := int(nRaw)%60 + 2
		m := int(mRaw)%(n-1) + 1
		d := stats.Normal{Mu: 100, Sigma: float64(sigmaRaw)}
		cross := CrossingHomog(d, m, n)
		smaller := float64(min(m, n-m)) * d.Mu
		return cross.Mu <= smaller+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCrossingSets(t *testing.T) {
	in := stats.Normal{Mu: 100, Sigma: 10}
	out := stats.Normal{Mu: 400, Sigma: 20}
	got := CrossingSets(in, out)
	want := stats.MinOfNormals(in, out)
	if got != want {
		t.Errorf("CrossingSets = %v, want %v", got, want)
	}
	if got := CrossingSets(stats.Normal{}, out); !isZero(got) {
		t.Errorf("empty inside: %v, want zero", got)
	}
	if got := CrossingSets(in, stats.Normal{}); !isZero(got) {
		t.Errorf("empty outside: %v, want zero", got)
	}
}

func TestDemandPrefix(t *testing.T) {
	demands := []stats.Normal{
		{Mu: 100, Sigma: 10},
		{Mu: 200, Sigma: 20},
		{Mu: 300, Sigma: 30},
	}
	p := newDemandPrefix(demands)
	agg := p.aggregate(0, 3)
	if agg.Mu != 600 {
		t.Errorf("aggregate mean = %v, want 600", agg.Mu)
	}
	wantVar := 100.0 + 400 + 900
	if math.Abs(agg.Var()-wantVar) > 1e-9 {
		t.Errorf("aggregate var = %v, want %v", agg.Var(), wantVar)
	}
	mid := p.aggregate(1, 2)
	if mid.Mu != 200 || math.Abs(mid.Sigma-20) > 1e-12 {
		t.Errorf("aggregate(1,2) = %v, want N(200, 20^2)", mid)
	}
	if got := p.aggregate(2, 2); !isZero(got) {
		t.Errorf("empty aggregate = %v, want zero", got)
	}
}

// TestDemandPrefixCrossingMatchesDirect cross-checks the O(1) prefix
// crossing against a direct aggregate computation.
func TestDemandPrefixCrossingMatchesDirect(t *testing.T) {
	demands := []stats.Normal{
		{Mu: 150, Sigma: 40}, {Mu: 250, Sigma: 60}, {Mu: 350, Sigma: 10},
		{Mu: 100, Sigma: 90}, {Mu: 500, Sigma: 5},
	}
	p := newDemandPrefix(demands)
	for a := 0; a <= len(demands); a++ {
		for b := a; b <= len(demands); b++ {
			var inMu, inVar, outMu, outVar float64
			for i, d := range demands {
				if i >= a && i < b {
					inMu += d.Mu
					inVar += d.Var()
				} else {
					outMu += d.Mu
					outVar += d.Var()
				}
			}
			want := CrossingSets(
				stats.Normal{Mu: inMu, Sigma: math.Sqrt(inVar)},
				stats.Normal{Mu: outMu, Sigma: math.Sqrt(outVar)},
			)
			got := p.crossing(a, b)
			if math.Abs(got.Mu-want.Mu) > 1e-9 || math.Abs(got.Sigma-want.Sigma) > 1e-9 {
				t.Errorf("crossing(%d,%d) = %v, want %v", a, b, got, want)
			}
		}
	}
}

// TestCrossingFullAndEmptySubstringIsZero: when the substring holds all or
// none of the VMs, no traffic crosses the link.
func TestCrossingFullAndEmptySubstringIsZero(t *testing.T) {
	p := newDemandPrefix([]stats.Normal{{Mu: 100, Sigma: 10}, {Mu: 50, Sigma: 5}})
	if got := p.crossing(0, 2); !isZero(got) {
		t.Errorf("full substring crossing = %v, want zero", got)
	}
	if got := p.crossing(1, 1); !isZero(got) {
		t.Errorf("empty substring crossing = %v, want zero", got)
	}
}
