package core

import (
	"fmt"
	"math"

	"repro/internal/stats"
	"repro/internal/topology"
)

// Policy selects how the allocators break ties between multiple valid
// placements inside the chosen subtree.
type Policy int

const (
	// MinMaxOccupancy is the paper's SVC algorithm: among all valid
	// placements in the lowest feasible subtree, pick the one minimizing
	// the maximum bandwidth occupancy ratio of the subtree's links
	// (Algorithm 1, recurrences Eq. 11-12).
	MinMaxOccupancy Policy = iota + 1
	// FirstFeasible is the adapted TIVC baseline (paper Section VI-B3):
	// the same validity condition and lowest-subtree search, but no
	// occupancy optimization — the first valid VM split found is kept.
	FirstFeasible
	// GreedyPack mimics Oktopus's greedy allocation: within the lowest
	// feasible subtree, pack as many VMs as possible into each child in
	// turn (maximum locality), again without occupancy optimization.
	GreedyPack
)

// String implements fmt.Stringer.
func (p Policy) String() string {
	switch p {
	case MinMaxOccupancy:
		return "min-max-occupancy"
	case FirstFeasible:
		return "first-feasible"
	case GreedyPack:
		return "greedy-pack"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// infeasible marks unreachable DP states.
var infeasible = math.Inf(1)

// homogRecord is the per-vertex state of Algorithm 1: the allocable VM set
// (paper Definition 1) with, for each allocable count, the optimal max
// occupancy of the links strictly inside the subtree and the per-child
// split choices needed to reconstruct the allocation. All slices are
// arena-backed and only valid for the duration of one allocation call.
type homogRecord struct {
	cap    int       // largest VM count worth considering in this subtree
	optIn  []float64 // optIn[e]: min over placements of max in-subtree occupancy; infeasible if e not placeable
	upOcc  []float64 // upOcc[e]: occupancy of this vertex's uplink with e VMs inside (unused for the root)
	alloc  []bool    // alloc[e]: e is in the allocable VM set (subtree + uplink constraints)
	choice [][]int32 // choice[i][s]: VMs given to child i when the first i+1 children hold s (internal vertices only)
}

// AllocateHomog runs the paper's homogeneous VM allocation over the current
// ledger state and returns the placement and its per-link crossing-demand
// contributions without committing them. It returns ErrNoCapacity when no
// subtree can host the request. Worker count is chosen automatically; see
// AllocateHomogWorkers.
func AllocateHomog(led *Ledger, req Homogeneous, policy Policy) (Placement, []linkDemand, error) {
	return AllocateHomogWorkers(led, req, policy, 0)
}

// AllocateHomogWorkers is AllocateHomog with explicit control over DP
// parallelism: workers == 1 forces the sequential path, workers > 1 runs
// each tree level's vertex records on that many goroutines, and
// workers <= 0 picks automatically (GOMAXPROCS when the topology and
// request are large enough to amortize the fan-out). Both paths produce
// bit-identical placements.
func AllocateHomogWorkers(led *Ledger, req Homogeneous, policy Policy, workers int) (Placement, []linkDemand, error) {
	return allocateHomogScoped(led, req, policy, workers, nil)
}

// allocateHomogScoped is the scope-aware driver behind AllocateHomogWorkers:
// with a non-nil scope the level loop, vertex records and selection scan are
// confined to the scope's subtree (see planScope), so a pod-local manager
// never places VMs outside its pod.
func allocateHomogScoped(led *Ledger, req Homogeneous, policy Policy, workers int, scope *planScope) (Placement, []linkDemand, error) {
	if err := req.Validate(); err != nil {
		return Placement{}, nil, err
	}
	topo := led.Topology()

	// Crossing-demand table: crossing[m] is the demand the request places
	// on a link with m of its N VMs below (symmetric in m <-> N-m).
	// Memoized across calls — Headroom and repeated identical requests
	// skip recomputing Clark's formulas entirely.
	crossing := crossingTableHomog(req.Demand, req.N)

	w := resolveWorkers(workers, topo.Len(), req.N)
	scr := getHomogScratch(w, topo.Len())
	defer putHomogScratch(scr)
	records := scr.records

	for level := 0; level <= scopeHeight(topo, scope); level++ {
		verts := scopeAtLevel(topo, scope, level)
		// Fan a level out only when its records carry enough DP work to
		// amortize the goroutine handoff; small levels (and whole small
		// trees) run sequentially regardless of the worker count.
		lw := w
		if lw > 1 && homogLevelWork(topo, verts, records, req.N) < parallelMinLevelWork {
			lw = 1
		}
		forEachVertex(verts, lw, func(slot int, v topology.NodeID) {
			homogCompute(led, topo, v, req.N, crossing, records, policy, scr.arenas[slot])
		})
		// The selection scan stays sequential in topology order so
		// tie-breaking matches the sequential path exactly.
		var (
			best    topology.NodeID = topology.None
			bestVal                 = infeasible
		)
		for _, v := range verts {
			rec := &records[v]
			if rec.cap < req.N || rec.optIn[req.N] == infeasible {
				continue
			}
			val := rec.optIn[req.N]
			if policy == FirstFeasible && best != topology.None {
				continue // keep the first feasible subtree at this level
			}
			if val < bestVal || best == topology.None {
				best, bestVal = v, val
			}
		}
		if best != topology.None {
			var p Placement
			homogBuild(topo, records, best, req.N, &p)
			p.normalize()
			return p, homogContributions(topo, req, &p), nil
		}
	}
	return Placement{}, nil, fmt.Errorf("%w: %v", ErrNoCapacity, req)
}

// homogLevelWork estimates the inner DP iterations homogCompute will
// spend on one level's vertices: the machine base cases cost their slot
// scan, and an internal vertex costs the (h, e) pair loops of its child
// combine — Σ over children of (child cap + 1) × (vertex cap + 1). The
// children's records are already finalized when a level is visited, so
// the estimate uses the exact caps the loops will see. The walk itself is
// O(edges at this level), negligible against the DP it gates.
func homogLevelWork(topo *topology.Topology, verts []topology.NodeID, records []homogRecord, n int) int {
	work := 0
	for _, v := range verts {
		node := topo.Node(v)
		if node.IsMachine() {
			work += min(n, node.Slots) + 1
			continue
		}
		capV := 0
		for _, c := range node.Children {
			capV += records[c].cap
		}
		capV = min(n, capV)
		for _, c := range node.Children {
			work += (min(records[c].cap, capV) + 1) * (capV + 1)
		}
	}
	return work
}

// homogCompute fills the DP record for vertex v from its children's
// records (which the level-order traversal has already computed). It only
// reads the ledger and the children's finalized records, so vertices of
// one level can be computed concurrently, each worker with its own arena.
func homogCompute(led *Ledger, topo *topology.Topology, v topology.NodeID, n int,
	crossing []stats.Normal, records []homogRecord, policy Policy, ar *arena) {

	node := topo.Node(v)
	rec := &records[v]
	*rec = homogRecord{}
	if node.IsMachine() {
		// Leaf base case: any count up to the free slots fits, and VMs on
		// the same machine use no links, so the in-subtree occupancy is 0.
		rec.cap = min(n, led.FreeSlots(v))
		rec.optIn = ar.f64.alloc(rec.cap + 1)
	} else {
		// Combine children left to right: acc[s] is the optimal value of
		// placing s VMs in the first i child subtrees, where a child
		// taking e VMs costs max(child in-subtree optimum, child uplink
		// occupancy) — Eq. 11 specialized to the incremental tree T_v[i].
		// acc and next ping-pong between two arena buffers; only the
		// final one survives as rec.optIn.
		capV := 0
		for _, c := range node.Children {
			capV += records[c].cap
		}
		rec.cap = min(n, capV)
		acc := ar.f64.alloc(rec.cap + 1)
		next := ar.f64.alloc(rec.cap + 1)
		for s := 1; s <= rec.cap; s++ {
			acc[s] = infeasible
		}
		rec.choice = ar.s32.alloc(len(node.Children))
		reach := 0 // largest sum reachable with the children combined so far
		for i, c := range node.Children {
			child := &records[c]
			pick := ar.i32.alloc(rec.cap + 1)
			for s := range next {
				next[s] = infeasible
				pick[s] = -1
			}
			for h := 0; h <= reach; h++ {
				if acc[h] == infeasible {
					continue
				}
				for e := 0; e <= child.cap && h+e <= rec.cap; e++ {
					if !child.alloc[e] {
						continue
					}
					switch policy {
					case MinMaxOccupancy:
						val := math.Max(acc[h], math.Max(child.optIn[e], child.upOcc[e]))
						if val < next[h+e] {
							next[h+e] = val
							pick[h+e] = int32(e)
						}
					case GreedyPack:
						// e iterates ascending, so overwriting keeps the
						// largest feasible share in this child.
						next[h+e] = 0
						pick[h+e] = int32(e)
					default: // FirstFeasible keeps the split found first
						if next[h+e] == infeasible {
							next[h+e] = 0
							pick[h+e] = int32(e)
						}
					}
				}
			}
			acc, next = next, acc
			rec.choice[i] = pick
			reach = min(rec.cap, reach+child.cap)
		}
		rec.optIn = acc
	}

	// Uplink occupancy and the allocable VM set (Definition 1). The root
	// has no uplink; every other vertex must keep its uplink admissible.
	rec.alloc = ar.bl.alloc(rec.cap + 1)
	isRoot := node.Parent == topology.None
	if !isRoot {
		rec.upOcc = ar.f64.alloc(rec.cap + 1)
	}
	for e := 0; e <= rec.cap; e++ {
		if rec.optIn[e] == infeasible {
			continue
		}
		if isRoot {
			rec.alloc[e] = true
			continue
		}
		rec.upOcc[e] = led.OccupancyWith(v, crossing[e])
		rec.alloc[e] = rec.upOcc[e] < 1
	}
}

// homogBuild reconstructs the chosen placement by replaying the recorded
// per-child split choices top-down.
func homogBuild(topo *topology.Topology, records []homogRecord, v topology.NodeID, s int, p *Placement) {
	if s == 0 {
		return
	}
	node := topo.Node(v)
	if node.IsMachine() {
		p.Entries = append(p.Entries, PlacementEntry{Machine: v, Count: s})
		return
	}
	rec := &records[v]
	for i := len(node.Children) - 1; i >= 0; i-- {
		e := int(rec.choice[i][s])
		if e < 0 {
			panic(fmt.Sprintf("core: no recorded choice for child %d of node %d at sum %d", i, v, s))
		}
		homogBuild(topo, records, node.Children[i], e, p)
		s -= e
	}
	if s != 0 {
		panic(fmt.Sprintf("core: reconstruction at node %d left %d VMs unassigned", v, s))
	}
}
