//go:build invariants

package core

import "fmt"

// invariantsEnabled gates runtime assertions that are too hot for
// production builds. Enable with `go test -tags invariants`; the race
// storm tests run under this tag in scripts/check.sh.
const invariantsEnabled = true

// assertOccupancyLocked checks paper Eq. 4 after a fresh admission
// commits: every link the allocation contributes to must still satisfy
// O_L <= 1 (plus float slack). Repairs are exempt — a degraded repair
// deliberately re-admits at a weakened eps, so the global-c occupancy
// measure may legitimately exceed 1 for those links.
func (m *Manager) assertOccupancyLocked(mut *Mutation) {
	if mut.Op != OpAlloc {
		return
	}
	const slack = 1e-9
	for _, c := range mut.Contribs {
		if o := m.led.Occupancy(c.Link); o > 1+slack {
			panic(fmt.Sprintf("invariant violated: link %d occupancy %.12f > 1 after committing job %d (Eq. 4)",
				c.Link, o, mut.Job))
		}
	}
}
