package core

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/topology"
)

// HeteroAlgorithm selects the allocator Manager uses for heterogeneous
// requests.
type HeteroAlgorithm int

const (
	// HeteroSubstring is the paper's polynomial substring heuristic.
	HeteroSubstring HeteroAlgorithm = iota + 1
	// HeteroExact is the exponential exact DP (small requests only).
	HeteroExact
	// HeteroFirstFit is the first-fit baseline.
	HeteroFirstFit
)

// ErrUnknownJob is returned by Release for job IDs the manager is not
// tracking.
var ErrUnknownJob = errors.New("core: unknown job")

// JobID identifies an admitted request within a Manager.
type JobID int64

// Allocation is the manager's record of one admitted request.
type Allocation struct {
	ID        JobID
	Placement Placement

	contribs []linkDemand
}

// Manager is the paper's network manager: it admits tenant requests by
// running the VM allocation algorithms against the ledger, commits the
// resulting reservations, and releases them when jobs finish. It is safe
// for concurrent use.
type Manager struct {
	mu     sync.Mutex
	led    *Ledger
	policy Policy
	hetero HeteroAlgorithm
	jobs   map[JobID]*Allocation
	nextID JobID
}

// ManagerOption configures a Manager.
type ManagerOption interface {
	apply(*Manager)
}

type policyOption Policy

func (o policyOption) apply(m *Manager) { m.policy = Policy(o) }

// WithPolicy selects the placement tie-breaking policy (default
// MinMaxOccupancy, the paper's SVC algorithm).
func WithPolicy(p Policy) ManagerOption { return policyOption(p) }

type heteroOption HeteroAlgorithm

func (o heteroOption) apply(m *Manager) { m.hetero = HeteroAlgorithm(o) }

// WithHeteroAlgorithm selects the heterogeneous allocator (default
// HeteroSubstring).
func WithHeteroAlgorithm(a HeteroAlgorithm) ManagerOption { return heteroOption(a) }

// NewManager returns a manager over an empty datacenter with bandwidth
// outage risk factor eps.
func NewManager(topo *topology.Topology, eps float64, opts ...ManagerOption) (*Manager, error) {
	led, err := NewLedger(topo, eps)
	if err != nil {
		return nil, err
	}
	m := &Manager{
		led:    led,
		policy: MinMaxOccupancy,
		hetero: HeteroSubstring,
		jobs:   make(map[JobID]*Allocation),
	}
	for _, o := range opts {
		o.apply(m)
	}
	return m, nil
}

// AllocateHomog admits a homogeneous request (stochastic SVC or
// deterministic VC), committing its reservations. It returns
// ErrNoCapacity-wrapped errors when the request must be rejected.
func (m *Manager) AllocateHomog(req Homogeneous) (*Allocation, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	p, contribs, err := AllocateHomog(m.led, req, m.policy)
	if err != nil {
		return nil, err
	}
	return m.admit(p, contribs), nil
}

// AllocateHetero admits a heterogeneous SVC request using the configured
// algorithm, committing its reservations.
func (m *Manager) AllocateHetero(req Heterogeneous) (*Allocation, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	var (
		p        Placement
		contribs []linkDemand
		err      error
	)
	switch m.hetero {
	case HeteroExact:
		p, contribs, err = AllocateHeteroExact(m.led, req)
	case HeteroFirstFit:
		p, contribs, err = AllocateFirstFit(m.led, req)
	default:
		p, contribs, err = AllocateHeteroSubstring(m.led, req, m.policy)
	}
	if err != nil {
		return nil, err
	}
	return m.admit(p, contribs), nil
}

func (m *Manager) admit(p Placement, contribs []linkDemand) *Allocation {
	m.nextID++
	a := &Allocation{ID: m.nextID, Placement: p, contribs: contribs}
	commit(m.led, &p, contribs)
	m.jobs[a.ID] = a
	return a
}

// CanAllocateHomog reports whether a homogeneous request would currently
// be admitted, without committing anything — a capacity-planning dry run.
func (m *Manager) CanAllocateHomog(req Homogeneous) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, _, err := AllocateHomog(m.led, req, m.policy)
	return err == nil
}

// CanAllocateHetero reports whether a heterogeneous request would currently
// be admitted, without committing anything.
func (m *Manager) CanAllocateHetero(req Heterogeneous) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	var err error
	switch m.hetero {
	case HeteroExact:
		_, _, err = AllocateHeteroExact(m.led, req)
	case HeteroFirstFit:
		_, _, err = AllocateFirstFit(m.led, req)
	default:
		_, _, err = AllocateHeteroSubstring(m.led, req, m.policy)
	}
	return err == nil
}

// Release frees the slots and reservations of an admitted job.
func (m *Manager) Release(id JobID) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	a, ok := m.jobs[id]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownJob, id)
	}
	rollback(m.led, &a.Placement, a.contribs)
	delete(m.jobs, id)
	return nil
}

// Running returns the number of admitted, unreleased jobs.
func (m *Manager) Running() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.jobs)
}

// FreeSlots returns the number of unoccupied VM slots.
func (m *Manager) FreeSlots() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.led.TotalFreeSlots()
}

// SetOffline takes a machine out of (or back into) service. Offline
// machines receive no new VMs; running jobs are unaffected until their
// owner releases or fails them.
func (m *Manager) SetOffline(machine topology.NodeID, offline bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.led.SetOffline(machine, offline)
}

// MaxOccupancy returns the maximum bandwidth occupancy ratio over all
// links, the paper's Fig. 9 statistic.
func (m *Manager) MaxOccupancy() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.led.MaxOccupancy()
}

// Headroom reports how many more copies of the given homogeneous request
// the datacenter could admit right now, exploring on a cloned ledger so
// live state is untouched. The count is capped at limit (a limit of 0
// means no cap beyond the datacenter's slot count).
func (m *Manager) Headroom(req Homogeneous, limit int) (int, error) {
	if err := req.Validate(); err != nil {
		return 0, err
	}
	m.mu.Lock()
	scratch := m.led.Clone()
	m.mu.Unlock()
	if limit <= 0 {
		limit = scratch.TotalFreeSlots()/req.N + 1
	}
	count := 0
	for count < limit {
		p, contribs, err := AllocateHomog(scratch, req, m.policy)
		if err != nil {
			if errors.Is(err, ErrNoCapacity) {
				break
			}
			return count, err
		}
		commit(scratch, &p, contribs)
		count++
	}
	return count, nil
}

// MaxOccupancyByLevel returns the maximum occupancy per link level
// (index 0 = host links).
func (m *Manager) MaxOccupancyByLevel() []float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.led.MaxOccupancyByLevel()
}

// Epsilon returns the manager's risk factor.
func (m *Manager) Epsilon() float64 { return m.led.Epsilon() }

// Topology returns the managed topology.
func (m *Manager) Topology() *topology.Topology { return m.led.Topology() }

// Ledger exposes the underlying ledger for read-only inspection by
// in-process tooling (the simulator and tests). Callers must not mutate it
// while the manager is in use.
func (m *Manager) Ledger() *Ledger { return m.led }
