package core

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/topology"
)

// HeteroAlgorithm selects the allocator Manager uses for heterogeneous
// requests.
type HeteroAlgorithm int

const (
	// HeteroSubstring is the paper's polynomial substring heuristic.
	HeteroSubstring HeteroAlgorithm = iota + 1
	// HeteroExact is the exponential exact DP (small requests only).
	HeteroExact
	// HeteroFirstFit is the first-fit baseline.
	HeteroFirstFit
)

// ErrUnknownJob is returned by Release for job IDs the manager is not
// tracking.
var ErrUnknownJob = errors.New("core: unknown job")

// JobID identifies an admitted request within a Manager.
type JobID int64

// Allocation is the manager's record of one admitted request.
type Allocation struct {
	ID        JobID
	Placement Placement

	contribs []linkDemand
	// The admitted request, kept so failure repair can re-run the
	// allocation DP for the same demand profile. Exactly one is set.
	homog  *Homogeneous
	hetero *Heterogeneous
}

// Manager is the paper's network manager: it admits tenant requests by
// running the VM allocation algorithms against the ledger, commits the
// resulting reservations, and releases them when jobs finish. It is safe
// for concurrent use.
//
// Admission is optimistic by default: the allocation DP plans on a
// lock-free ledger snapshot and the write lock is taken only to
// revalidate the links and machines the chosen placement touches and to
// commit (plan → validate → commit; see optimistic.go, AdmissionStats,
// and WithLockedAdmission for the serialized mode). Read-only work
// (CanAllocate* dry runs, MaxOccupancy* metrics, Headroom probes) runs
// against the same versioned ledger snapshot: the lock is held only for
// the O(links) clone, not the full dynamic program, so dry runs and
// metrics reads proceed concurrently with admissions. Snapshot reads are
// point-in-time consistent; under concurrent mutation they may lag the
// live ledger by the mutations that land after the snapshot was cut.
type Manager struct {
	mu      sync.Mutex
	led     *Ledger
	policy  Policy
	hetero  HeteroAlgorithm
	jobs    map[JobID]*Allocation
	nextID  JobID
	version uint64 // bumped on every ledger mutation (guarded by mu)

	// Durability: the optional write-ahead journal observing every
	// mutation, and the idempotency-key table (guarded by mu). Both are
	// rebuilt by crash recovery (see internal/wal).
	journal Journal
	idem    map[string]idemEntry

	// Failure/repair state (guarded by mu): jobs running with a weakened
	// effective eps after a degraded repair, and the fault/repair counters
	// FailureStats exposes.
	degraded map[JobID]float64
	fstats   failureCounters

	// Admission pipeline: lockedAdmission (immutable after construction)
	// forces planning under the write lock; adm counts how admissions
	// traveled through the optimistic pipeline (guarded by mu). See
	// optimistic.go.
	lockedAdmission bool
	adm             admissionCounters

	// Cached read snapshot, rebuilt lazily when version moves. snapMu
	// only serializes snapshot rebuilds, never the DP work on top.
	snapMu  sync.Mutex
	snap    *Ledger
	snapVer uint64

	// plans memoizes per-subtree DP tables across admissions, keyed by
	// (demand params, N, policy) and validated per vertex against the
	// ledger's subtree versions (see plancache.go). Immutable pointer,
	// internally synchronized.
	plans *planCache

	// scope, when non-nil, confines every planning DP to one subtree
	// (WithPlanSubtree) — the pod-local planning seam the sharded control
	// plane builds on. Immutable after construction.
	scope *planScope
}

// ManagerOption configures a Manager.
type ManagerOption interface {
	apply(*Manager)
}

type policyOption Policy

func (o policyOption) apply(m *Manager) { m.policy = Policy(o) }

// WithPolicy selects the placement tie-breaking policy (default
// MinMaxOccupancy, the paper's SVC algorithm).
func WithPolicy(p Policy) ManagerOption { return policyOption(p) }

type heteroOption HeteroAlgorithm

func (o heteroOption) apply(m *Manager) { m.hetero = HeteroAlgorithm(o) }

// WithHeteroAlgorithm selects the heterogeneous allocator (default
// HeteroSubstring).
func WithHeteroAlgorithm(a HeteroAlgorithm) ManagerOption { return heteroOption(a) }

type lockedAdmissionOption struct{}

func (lockedAdmissionOption) apply(m *Manager) { m.lockedAdmission = true }

// WithLockedAdmission makes every allocation plan on the live ledger with
// the write lock held, serializing admissions — the pre-optimistic
// behavior. By default the manager plans on a lock-free snapshot and only
// revalidates and commits under the lock (see AdmissionStats). Placements
// and rejections are identical either way; locked mode remains as the
// differential baseline and as an operational escape hatch.
func WithLockedAdmission() ManagerOption { return lockedAdmissionOption{} }

// NewManager returns a manager over an empty datacenter with bandwidth
// outage risk factor eps.
func NewManager(topo *topology.Topology, eps float64, opts ...ManagerOption) (*Manager, error) {
	led, err := NewLedger(topo, eps)
	if err != nil {
		return nil, err
	}
	m := &Manager{
		led:      led,
		policy:   MinMaxOccupancy,
		hetero:   HeteroSubstring,
		jobs:     make(map[JobID]*Allocation),
		degraded: make(map[JobID]float64),
		idem:     make(map[string]idemEntry),
		plans:    newPlanCache(),
	}
	for _, o := range opts {
		o.apply(m)
	}
	return m, nil
}

// AllocateHomog admits a homogeneous request (stochastic SVC or
// deterministic VC), committing its reservations. It returns
// ErrNoCapacity-wrapped errors when the request must be rejected. With
// WithIdemKey, a key already committed replays the original placement
// instead of allocating again.
func (m *Manager) AllocateHomog(req Homogeneous, opts ...CallOption) (*Allocation, error) {
	co := evalCallOpts(opts)
	r := req
	plan := func(led *Ledger) (Placement, []linkDemand, error) {
		return m.plans.allocateHomog(led, req, m.policy, m.scope)
	}
	return m.allocate(co, plan, Mutation{Op: OpAlloc, Job: co.jobID, Homog: &r, IdemKey: co.idemKey}, req.N)
}

// AllocateHetero admits a heterogeneous SVC request using the configured
// algorithm, committing its reservations.
func (m *Manager) AllocateHetero(req Heterogeneous, opts ...CallOption) (*Allocation, error) {
	co := evalCallOpts(opts)
	r := req
	plan := func(led *Ledger) (Placement, []linkDemand, error) {
		return m.planHetero(led, req)
	}
	return m.allocate(co, plan, Mutation{Op: OpAlloc, Job: co.jobID, Hetero: &r, IdemKey: co.idemKey}, req.N())
}

// planHetero runs the configured heterogeneous allocator against a ledger
// without committing. Scoped managers always use the substring DP (the
// only hetero allocator with a scoped variant; see WithPlanSubtree).
func (m *Manager) planHetero(led *Ledger, req Heterogeneous) (Placement, []linkDemand, error) {
	if m.scope == nil {
		switch m.hetero {
		case HeteroExact:
			return AllocateHeteroExact(led, req)
		case HeteroFirstFit:
			return AllocateFirstFit(led, req)
		}
	}
	return m.plans.allocateHeteroSubstring(led, req, m.policy, m.scope)
}

// idemAllocLocked resolves an allocate call's idempotency key: done is
// true when the key already committed and the stored outcome (or a
// conflict error) must be returned without allocating.
func (m *Manager) idemAllocLocked(key string) (*Allocation, bool, error) {
	if key == "" {
		return nil, false, nil
	}
	e, ok := m.idem[key]
	if !ok {
		return nil, false, nil
	}
	if e.op != OpAlloc {
		return nil, true, fmt.Errorf("%w: key committed by %v", ErrIdemConflict, e.op)
	}
	// The replayed Allocation carries the original ID and placement only;
	// it is a response stub, not the manager's live record.
	return &Allocation{ID: e.job, Placement: e.placement.Clone()}, true, nil
}

// snapshot returns a read-only clone of the ledger reflecting every
// mutation committed before the call. The clone is cached and shared by
// concurrent readers until the next mutation invalidates it, so a burst
// of dry runs costs one O(links) copy, and the write lock is held only
// for that copy — never for the DP that runs on top of it. Callers must
// not mutate the returned ledger; mutating probes clone it again.
func (m *Manager) snapshot() *Ledger {
	led, _ := m.snapshotVer()
	return led
}

// snapshotVer is snapshot plus the ledger version the clone reflects —
// the optimistic admission pipeline plans on the clone and uses the
// version to detect concurrent commits at validation time.
func (m *Manager) snapshotVer() (*Ledger, uint64) {
	m.snapMu.Lock()
	defer m.snapMu.Unlock()
	m.mu.Lock()
	if m.snap != nil && m.snapVer == m.version {
		ver := m.snapVer
		m.mu.Unlock()
		return m.snap, ver
	}
	ver := m.version
	snap := m.led.Clone()
	m.mu.Unlock()
	m.snap, m.snapVer = snap, ver
	return snap, ver
}

// CanAllocateHomog reports whether a homogeneous request would currently
// be admitted, without committing anything — a capacity-planning dry run.
// It runs on a ledger snapshot, concurrently with admissions.
func (m *Manager) CanAllocateHomog(req Homogeneous) bool {
	_, _, err := m.plans.allocateHomog(m.snapshot(), req, m.policy, m.scope)
	return err == nil
}

// CanAllocateHetero reports whether a heterogeneous request would currently
// be admitted, without committing anything. It runs on a ledger snapshot,
// concurrently with admissions.
func (m *Manager) CanAllocateHetero(req Heterogeneous) bool {
	_, _, err := m.planHetero(m.snapshot(), req)
	return err == nil
}

// Release frees the slots and reservations of an admitted job. With
// WithIdemKey, a key already committed for this release replays success
// instead of failing with ErrUnknownJob.
func (m *Manager) Release(id JobID, opts ...CallOption) error {
	co := evalCallOpts(opts)
	m.mu.Lock()
	if co.idemKey != "" {
		if e, ok := m.idem[co.idemKey]; ok {
			m.mu.Unlock()
			if e.op != OpRelease || e.job != id {
				return fmt.Errorf("%w: key committed by %v of job %d", ErrIdemConflict, e.op, e.job)
			}
			return nil
		}
	}
	if _, ok := m.jobs[id]; !ok {
		m.mu.Unlock()
		return fmt.Errorf("%w: %d", ErrUnknownJob, id)
	}
	mut := Mutation{Op: OpRelease, Job: id, IdemKey: co.idemKey}
	// Stage the journal record and apply under the lock; wait for
	// durability outside it so concurrent releases and admissions share
	// one fsync (see stageLocked for the failure contract). Locked
	// admission mode used to commit synchronously here — holding m.mu
	// across the journal fsync, which both serialized every concurrent
	// release behind the disk and starved the group committer of
	// batch-mates; staging is identical in log order and durability.
	wait, err := m.stageLocked(mut)
	if err != nil {
		m.mu.Unlock()
		return err
	}
	err = m.applyLocked(mut)
	m.mu.Unlock()
	if err != nil {
		return err
	}
	return wait()
}

// HasJob reports whether a job is currently admitted. The sharded
// router's crash recovery uses it to resolve in-doubt cross-pod
// admissions: an intent with no matching job on some pod must abort.
func (m *Manager) HasJob(id JobID) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, ok := m.jobs[id]
	return ok
}

// JobPlacement returns a clone of an admitted job's current placement.
func (m *Manager) JobPlacement(id JobID) (Placement, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	a, ok := m.jobs[id]
	if !ok {
		return Placement{}, fmt.Errorf("%w: %d", ErrUnknownJob, id)
	}
	return a.Placement.Clone(), nil
}

// Running returns the number of admitted, unreleased jobs.
func (m *Manager) Running() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.jobs)
}

// FreeSlots returns the number of unoccupied VM slots.
func (m *Manager) FreeSlots() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.led.TotalFreeSlots()
}

// Version returns the count of applied mutations since construction —
// the committed-version clock replication lag is measured in.
func (m *Manager) Version() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.version
}

// SetOffline takes a machine out of (or back into) service. Offline
// machines receive no new VMs; running jobs are unaffected until their
// owner releases or fails them. It fails only when the attached journal
// rejects the mutation.
func (m *Manager) SetOffline(machine topology.NodeID, offline bool) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.commitLocked(Mutation{Op: OpSetOffline, Node: machine, Offline: offline})
}

// MaxOccupancy returns the maximum bandwidth occupancy ratio over all
// links, the paper's Fig. 9 statistic. It reads a ledger snapshot, so
// metrics scrapes never stall admissions.
func (m *Manager) MaxOccupancy() float64 {
	return m.snapshot().MaxOccupancy()
}

// Headroom reports how many more copies of the given homogeneous request
// the datacenter could admit right now, exploring on a cloned ledger so
// live state is untouched. The count is capped at limit (a limit of 0
// means no cap beyond the datacenter's slot count).
func (m *Manager) Headroom(req Homogeneous, limit int) (int, error) {
	if err := req.Validate(); err != nil {
		return 0, err
	}
	scratch := m.snapshot().Clone()
	if limit <= 0 {
		limit = scratch.TotalFreeSlots()/req.N + 1
	}
	count := 0
	for count < limit {
		p, contribs, err := allocateHomogScoped(scratch, req, m.policy, 0, m.scope)
		if err != nil {
			if errors.Is(err, ErrNoCapacity) {
				break
			}
			return count, err
		}
		commit(scratch, &p, contribs)
		count++
	}
	return count, nil
}

// MaxOccupancyByLevel returns the maximum occupancy per link level
// (index 0 = host links). It reads a ledger snapshot.
func (m *Manager) MaxOccupancyByLevel() []float64 {
	return m.snapshot().MaxOccupancyByLevel()
}

// Epsilon returns the manager's risk factor.
func (m *Manager) Epsilon() float64 { return m.led.Epsilon() }

// Topology returns the managed topology.
func (m *Manager) Topology() *topology.Topology { return m.led.Topology() }

// Ledger exposes the underlying ledger for read-only inspection by
// in-process tooling (the simulator and tests). Callers must not mutate it
// while the manager is in use.
func (m *Manager) Ledger() *Ledger { return m.led }

// FreeSlotsSubtree returns the number of unoccupied VM slots on machines
// inside root's subtree — the per-pod capacity view a sharded control
// plane reports, where each pod controller's ledger is authoritative only
// for its own subtree.
func (m *Manager) FreeSlotsSubtree(root topology.NodeID) int {
	topo := m.led.Topology()
	machines := topo.SubtreeMachines(nil, root)
	m.mu.Lock()
	defer m.mu.Unlock()
	total := 0
	for _, mc := range machines {
		total += m.led.FreeSlots(mc)
	}
	return total
}

// LinkLoad is the point-in-time load of one physical link, for status
// surfaces (the /v1/links endpoint and per-shard status sections).
type LinkLoad struct {
	Link       topology.LinkID
	Capacity   float64
	Occupancy  float64 // paper Eq. 6 ratio O_L
	DetLoad    float64 // deterministic reservations D_L
	Stochastic int     // stochastic demands sharing the link
}

// LinkLoads returns the load of every link, in link order. It reads a
// ledger snapshot, so status scrapes never stall admissions.
func (m *Manager) LinkLoads() []LinkLoad {
	led := m.snapshot()
	topo := led.Topology()
	out := make([]LinkLoad, 0, len(topo.Links()))
	for _, l := range topo.Links() {
		out = append(out, LinkLoad{
			Link:       l,
			Capacity:   topo.LinkCap(l),
			Occupancy:  led.Occupancy(l),
			DetLoad:    led.DetReserved(l),
			Stochastic: led.StochasticCount(l),
		})
	}
	return out
}
