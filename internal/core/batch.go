package core

import (
	"errors"
	"fmt"
	"sync"
)

// Batch admission: drain K queued requests, plan them all against ONE
// ledger snapshot (an overlay clone that absorbs each accepted plan, so
// later items see earlier ones), revalidate and apply them under a
// single write-lock hold, and stage their journal records as one
// contiguous WAL group — one write+fsync for the whole batch. The plan
// cache makes the overlay planning cheap: items sharing a demand shape
// reuse the same DP tables, and each in-overlay commit invalidates only
// the O(depth) subtree versions on its placement's paths.
//
// Semantics match the serialized pipeline item by item (the batch
// differential test replays both into identical journals): items are
// planned and applied in slice order; an item the overlay rejects, or
// whose revalidation against the live ledger fails, is retried through
// the normal single-admission pipeline after the batch commits, so its
// rejection — if it still rejects — is authoritative against current
// state, exactly like a lone AllocateHomog call.

// BatchRequest is one request of a batch admission. Exactly one of
// Homog or Hetero must be set. Idempotency keys are not supported on
// the batch path; route keyed requests through AllocateHomog or
// AllocateHetero.
type BatchRequest struct {
	Homog  *Homogeneous
	Hetero *Heterogeneous
}

// BatchResult is the outcome of one batch item: the allocation, or the
// error that rejected it.
type BatchResult struct {
	Alloc *Allocation
	Err   error
}

// batchItem is one accepted plan moving toward commit.
type batchItem struct {
	idx      int
	p        Placement
	contribs []linkDemand
	wantVMs  int
	mut      Mutation
}

// AllocateBatch admits a group of requests as one planning and commit
// batch. Results are positional. In locked-admission mode (and for
// single-item batches) it degenerates to the serial pipeline.
func (m *Manager) AllocateBatch(reqs []BatchRequest) []BatchResult {
	out := make([]BatchResult, len(reqs))
	if len(reqs) == 0 {
		return out
	}
	if m.lockedAdmission || len(reqs) == 1 {
		for i, r := range reqs {
			out[i].Alloc, out[i].Err = m.allocateSingle(r)
		}
		return out
	}

	// Plan every item against one snapshot overlay, outside the lock.
	// Accepted plans are committed to the overlay so later items plan
	// around them; the overlay's subtree-version bumps keep the shared
	// plan cache exact across those in-batch commits.
	snap, _ := m.snapshotVer()
	work := snap.Clone()
	var (
		items []batchItem
		retry []int
	)
	start := now()
	for i := range reqs {
		it, err := m.planBatchItem(work, i, reqs[i])
		if err != nil {
			if errors.Is(err, ErrNoCapacity) {
				// The overlay holds the snapshot plus this batch's earlier
				// items; a rejection against it is not authoritative for
				// live state. Retry through the single pipeline below.
				retry = append(retry, i)
			} else {
				out[i] = BatchResult{Err: err}
			}
			continue
		}
		commit(work, &it.p, it.contribs)
		items = append(items, it)
	}
	planDur := since(start)

	// Revalidate against the live ledger, stage the journal records as
	// one group, and apply — all under a single lock hold.
	m.mu.Lock()
	m.adm.plan.Observe(planDur)
	accepted := items[:0]
	for i := range items {
		it := items[i]
		if verr := ValidatePlacement(m.led, it.contribs, &it.p, it.wantVMs); verr != nil {
			m.adm.conflicts++
			retry = append(retry, it.idx)
			continue
		}
		accepted = append(accepted, it)
	}
	var waits []batchWait
	if bj, ok := m.journal.(BatchJournal); ok && len(accepted) > 0 {
		waits = m.admitBatchStagedLocked(bj, accepted, out)
	} else {
		for i := range accepted {
			it := &accepted[i]
			it.mut.Placement = &it.p
			it.mut.Contribs = exportContribs(it.contribs)
			a, wait, err := m.admitStagedLocked(it.mut)
			if err != nil {
				out[it.idx] = BatchResult{Err: err}
				continue
			}
			m.adm.revalidated++
			out[it.idx] = BatchResult{Alloc: a}
			waits = append(waits, batchWait{idxs: []int{it.idx}, wait: wait})
		}
	}
	m.adm.batch.Observe(int64(len(accepted)))
	m.mu.Unlock()

	for _, bw := range waits {
		if err := bw.wait(); err != nil {
			// The mutations ARE applied in memory but durability failed and
			// the journal is poisoned; report it like the single path does.
			for _, idx := range bw.idxs {
				out[idx] = BatchResult{Err: err}
			}
		}
	}

	// Items the overlay or revalidation turned away get a fresh, fully
	// authoritative attempt against post-batch state.
	for _, idx := range retry {
		out[idx].Alloc, out[idx].Err = m.allocateSingle(reqs[idx])
	}
	return out
}

// batchWait maps one durability wait to the result slots it covers.
type batchWait struct {
	idxs []int
	wait func() error
}

// admitBatchStagedLocked stages every accepted item as one contiguous
// journal group (reserving sequential job IDs up front, since staging
// precedes apply) and applies them in order. Results land in out.
func (m *Manager) admitBatchStagedLocked(bj BatchJournal, accepted []batchItem, out []BatchResult) []batchWait {
	muts := make([]Mutation, len(accepted))
	idxs := make([]int, len(accepted))
	for k := range accepted {
		it := &accepted[k]
		it.mut.Placement = &it.p
		it.mut.Contribs = exportContribs(it.contribs)
		it.mut.Job = m.nextID + JobID(k+1)
		muts[k] = it.mut
		idxs[k] = it.idx
	}
	wait, err := bj.StageCommitBatch(muts)
	if err != nil {
		werr := fmt.Errorf("%w: %w", ErrJournal, err)
		for _, idx := range idxs {
			out[idx] = BatchResult{Err: werr}
		}
		return nil
	}
	for k := range muts {
		if aerr := m.applyLocked(muts[k]); aerr != nil {
			out[idxs[k]] = BatchResult{Err: aerr}
			continue
		}
		m.adm.revalidated++
		out[idxs[k]] = BatchResult{Alloc: m.jobs[muts[k].Job]}
	}
	return []batchWait{{idxs: idxs, wait: func() error {
		if werr := wait(); werr != nil {
			return fmt.Errorf("%w: %w", ErrJournal, werr)
		}
		return nil
	}}}
}

// planBatchItem plans one batch item against the overlay using the plan
// cache, returning the item ready for revalidation.
func (m *Manager) planBatchItem(led *Ledger, idx int, req BatchRequest) (batchItem, error) {
	switch {
	case req.Homog != nil:
		r := *req.Homog
		p, contribs, err := m.plans.allocateHomog(led, r, m.policy, m.scope)
		if err != nil {
			return batchItem{}, err
		}
		return batchItem{idx: idx, p: p, contribs: contribs, wantVMs: r.N,
			mut: Mutation{Op: OpAlloc, Homog: &r}}, nil
	case req.Hetero != nil:
		r := *req.Hetero
		var (
			p        Placement
			contribs []linkDemand
			err      error
		)
		switch {
		case m.scope == nil && m.hetero == HeteroExact:
			p, contribs, err = AllocateHeteroExact(led, r)
		case m.scope == nil && m.hetero == HeteroFirstFit:
			p, contribs, err = AllocateFirstFit(led, r)
		default:
			p, contribs, err = m.plans.allocateHeteroSubstring(led, r, m.policy, m.scope)
		}
		if err != nil {
			return batchItem{}, err
		}
		return batchItem{idx: idx, p: p, contribs: contribs, wantVMs: r.N(),
			mut: Mutation{Op: OpAlloc, Hetero: &r}}, nil
	default:
		return batchItem{}, fmt.Errorf("%w: batch request must set Homog or Hetero", ErrBadRequest)
	}
}

// allocateSingle routes one batch item through the normal single-request
// pipeline.
func (m *Manager) allocateSingle(req BatchRequest) (*Allocation, error) {
	switch {
	case req.Homog != nil:
		return m.AllocateHomog(*req.Homog)
	case req.Hetero != nil:
		return m.AllocateHetero(*req.Hetero)
	default:
		return nil, fmt.Errorf("%w: batch request must set Homog or Hetero", ErrBadRequest)
	}
}

// defaultMaxBatch bounds how many queued requests one Batcher drain
// plans together.
const defaultMaxBatch = 16

// Batcher queues concurrent admission requests and drains them through
// AllocateBatch in arrival order: callers block until their batch
// commits. Batching is purely opportunistic — the drain goroutine takes
// whatever is queued when it loops, so a lone request is planned
// immediately (a batch of one) and bursts coalesce without any timer.
type Batcher struct {
	m        *Manager
	maxBatch int

	mu       sync.Mutex
	queue    []batchCall
	draining bool
}

type batchCall struct {
	req  BatchRequest
	done chan BatchResult
}

// NewBatcher returns a batcher over the manager. maxBatch bounds one
// drain's group size; maxBatch < 1 selects the default.
func NewBatcher(m *Manager, maxBatch int) *Batcher {
	if maxBatch < 1 {
		maxBatch = defaultMaxBatch
	}
	return &Batcher{m: m, maxBatch: maxBatch}
}

// Allocate enqueues one request and blocks until its batch commits,
// returning this item's outcome.
func (b *Batcher) Allocate(req BatchRequest) (*Allocation, error) {
	done := make(chan BatchResult, 1)
	b.mu.Lock()
	b.queue = append(b.queue, batchCall{req: req, done: done})
	if !b.draining {
		b.draining = true
		go b.drain()
	}
	b.mu.Unlock()
	r := <-done
	return r.Alloc, r.Err
}

// drain repeatedly takes up to maxBatch queued calls and plans them as
// one batch, exiting when the queue empties.
func (b *Batcher) drain() {
	for {
		b.mu.Lock()
		n := min(len(b.queue), b.maxBatch)
		if n == 0 {
			b.draining = false
			b.mu.Unlock()
			return
		}
		calls := make([]batchCall, n)
		copy(calls, b.queue[:n])
		b.queue = append(b.queue[:0], b.queue[n:]...)
		b.mu.Unlock()

		reqs := make([]BatchRequest, n)
		for i, c := range calls {
			reqs[i] = c.req
		}
		results := b.m.AllocateBatch(reqs)
		for i, c := range calls {
			c.done <- results[i]
		}
	}
}
