package core

import (
	"testing"
	"time"

	"repro/internal/stats"
	"repro/internal/topology"
)

// TestClockSeamFakesRepairLatency drives the nowFunc seam with a clock
// that jumps 5ms per read: repair latency comes out exactly 5ms without
// sleeping, proving no code path consults the wall clock directly.
func TestClockSeamFakesRepairLatency(t *testing.T) {
	base := time.Unix(1700000000, 0)
	ticks := 0
	restore := SetClockForTesting(func() time.Time {
		ticks++
		return base.Add(time.Duration(ticks) * 5 * time.Millisecond)
	})
	defer restore()

	m := mustManager(t, smallThreeTier(), 0.05)
	a := mustAllocHomog(t, m, Homogeneous{N: 3, Demand: stats.Normal{Mu: 5, Sigma: 2}})

	var victim topology.NodeID = topology.None
	for _, e := range a.Placement.Entries {
		victim = e.Machine
		break
	}
	if _, err := m.FailMachine(victim); err != nil {
		t.Fatalf("FailMachine: %v", err)
	}
	res, err := m.RepairJob(a.ID)
	if err != nil {
		t.Fatalf("RepairJob: %v", err)
	}
	// start and end are consecutive reads of the fake clock.
	if res.Elapsed != 5*time.Millisecond {
		t.Fatalf("Elapsed = %v, want exactly 5ms from the fake clock", res.Elapsed)
	}
}

// TestClockSeamRestores checks the restore closure reinstates the wall
// clock, so a leaked fake cannot poison later tests.
func TestClockSeamRestores(t *testing.T) {
	fixed := time.Unix(42, 0)
	restore := SetClockForTesting(func() time.Time { return fixed })
	if !now().Equal(fixed) {
		t.Fatal("fake clock not installed")
	}
	restore()
	if now().Equal(fixed) {
		t.Fatal("restore did not reinstate the real clock")
	}
}
