package core

import (
	"fmt"

	"repro/internal/topology"
)

// AllocateFirstFit is the paper's heterogeneous baseline (Section V-B):
// VMs are sorted ascending by 95th-percentile demand and placed
// sequentially, depth-first, into the first subtree with spare slots and an
// admissible uplink. When a VM cannot be added to the current subtree the
// next sibling subtree is tried; VMs that would violate an ancestor's
// uplink are handed back to be placed further right. No occupancy
// optimization is performed. The returned placement is not committed.
func AllocateFirstFit(led *Ledger, req Heterogeneous) (Placement, []linkDemand, error) {
	if err := req.Validate(); err != nil {
		return Placement{}, nil, err
	}
	topo := led.Topology()
	order, sorted := orderByPercentile(req)
	prefix := newDemandPrefix(sorted)
	n := req.N()

	ff := &firstFitter{led: led, topo: topo, prefix: prefix, n: n}
	end := ff.place(topo.Root(), 0)
	if end != n {
		return Placement{}, nil, fmt.Errorf("%w: first fit placed %d of %d VMs: %v", ErrNoCapacity, end, n, req)
	}

	var p Placement
	for i, m := range ff.assigned {
		p.Entries = append(p.Entries, PlacementEntry{Machine: m, Count: 1, VMs: []int{order[i]}})
	}
	p.normalize()
	contribs := heteroContributions(topo, req, &p)
	// First fit's greedy checks are per-subtree-prefix and can, in corner
	// cases where an inside group outgrows the outside group, admit a
	// final split a later hand-back invalidated elsewhere. Re-validate the
	// complete placement so the baseline never violates the guarantee.
	if err := ValidatePlacement(led, contribs, &p, n); err != nil {
		return Placement{}, nil, fmt.Errorf("%w: first fit produced no valid placement: %w", ErrNoCapacity, err)
	}
	return p, contribs, nil
}

// firstFitter tracks the machine assigned to each sorted-VM position while
// the greedy descent runs. Nothing touches the ledger until the caller
// commits.
type firstFitter struct {
	led      *Ledger
	topo     *topology.Topology
	prefix   *demandPrefix
	n        int
	assigned []topology.NodeID // assigned[pos] = machine of sorted VM pos
}

// place assigns sorted VMs [start, end) into the subtree rooted at v for
// the largest end it can manage, and returns end.
func (f *firstFitter) place(v topology.NodeID, start int) int {
	if start == f.n {
		return start
	}
	node := f.topo.Node(v)
	end := start
	if node.IsMachine() {
		free := f.led.FreeSlots(v)
		for end < f.n && end-start < free && f.uplinkOK(v, start, end+1) {
			f.assigned = append(f.assigned, v)
			end++
		}
		return end
	}
	for _, c := range node.Children {
		end = f.place(c, end)
		if end == f.n {
			break
		}
	}
	// Hand back tail VMs while this vertex's uplink would be violated by
	// the substring it ended up holding.
	for end > start && !f.uplinkOK(v, start, end) {
		end--
		f.assigned = f.assigned[:end]
	}
	return end
}

// uplinkOK reports whether v's uplink stays admissible when the sorted VMs
// [a, b) sit below it. The root has no uplink.
func (f *firstFitter) uplinkOK(v topology.NodeID, a, b int) bool {
	if f.topo.Node(v).Parent == topology.None {
		return true
	}
	return f.led.OccupancyWith(v, f.prefix.crossing(a, b)) < 1
}
