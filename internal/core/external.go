package core

import "repro/internal/stats"

// External planning seam: the sharded control plane (internal/shard)
// separates WHERE a job is planned from WHERE its state lives. The
// router plans on one manager (a pod-local one, or the strict-mode
// shadow of the whole tree) and commits the resulting frame into the
// managers that own the touched state. PlanHomog/PlanHetero expose the
// plan half — the same DP the Allocate* calls run, minus the commit —
// and CommitExternal exposes the commit half: validate + journal + apply
// of a mutation this manager did not plan itself.

// PlanHomog plans a homogeneous admission against the live ledger and
// returns the uncommitted mutation: request, placement, and the exact
// per-link contributions a commit would charge. Job and IdemKey are left
// zero for the caller to assign. The ledger is not modified; committing
// the plan (CommitExternal, or Replay on a twin) is the caller's job,
// and any mutation that lands in between invalidates the plan.
func (m *Manager) PlanHomog(req Homogeneous) (Mutation, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	start := now()
	p, contribs, err := m.plans.allocateHomog(m.led, req, m.policy, m.scope)
	m.adm.plan.Observe(since(start))
	if err != nil {
		return Mutation{}, err
	}
	r := req
	return Mutation{Op: OpAlloc, Homog: &r, Placement: &p, Contribs: exportContribs(contribs)}, nil
}

// PlanHetero is PlanHomog for heterogeneous requests, running whichever
// hetero allocator the manager is configured with.
func (m *Manager) PlanHetero(req Heterogeneous) (Mutation, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	start := now()
	p, contribs, err := m.planHetero(m.led, req)
	m.adm.plan.Observe(since(start))
	if err != nil {
		return Mutation{}, err
	}
	h := Heterogeneous{Demands: append([]stats.Normal(nil), req.Demands...)}
	return Mutation{Op: OpAlloc, Hetero: &h, Placement: &p, Contribs: exportContribs(contribs)}, nil
}

// CommitExternal durably commits a mutation that was planned elsewhere.
// The mutation is validated with the same semantic checks recovery
// replay applies — an externally planned frame that does not fit this
// manager's state is vetoed before anything reaches the journal. The
// journal record is staged under the write lock (preserving log order =
// apply order) and the durability wait runs after unlock, so concurrent
// CommitExternal calls against different managers fsync in parallel and
// calls against the same manager share a group commit.
func (m *Manager) CommitExternal(mut Mutation) error {
	m.mu.Lock()
	if err := m.validateMutationLocked(mut); err != nil {
		m.mu.Unlock()
		return err
	}
	wait, err := m.stageLocked(mut)
	if err != nil {
		m.mu.Unlock()
		return err
	}
	if err := m.applyLocked(mut); err != nil {
		m.mu.Unlock()
		return err
	}
	m.mu.Unlock()
	return wait()
}
