package core

import (
	"fmt"
	"math"
	"sync/atomic"

	"repro/internal/stats"
	"repro/internal/topology"
)

// Ledger tracks the mutable allocation state of a datacenter: per-link
// bandwidth reservations (deterministic and stochastic, the paper's Fig. 2
// view) and per-machine used VM slots. It evaluates the probabilistic
// admission condition (paper Eq. 4) and the bandwidth occupancy ratio
// (paper Eq. 6) for every link.
//
// A Ledger is not safe for concurrent use; Manager provides the
// synchronized interface.
type Ledger struct {
	topo *topology.Topology
	eps  float64
	c    float64 // PhiInv(1 - eps), the paper's constant c

	links  []linkState      // indexed by NodeID; the root entry is unused
	used   []int            // used VM slots, indexed by NodeID (machines only)
	faults *topology.Faults // failed machines and links (failure injection)

	// subVer[v] is the subtree version of node v: it changes whenever any
	// reservation or slot state inside v's subtree (including v's own
	// uplink) changes. Ticks come from a process-global counter, so equal
	// subVer values across any two ledgers of the same lineage — the live
	// ledger, its snapshots, batch overlays — imply bit-identical subtree
	// state. The plan cache keys DP records on it; see plancache.go.
	// Fault state is deliberately NOT folded in: reachability depends on
	// links above v, so caches track Faults().Epoch() separately.
	subVer []uint64
}

// subVerTick issues globally unique subtree-version ticks. Monotonic per
// process; never reset, so clones that diverge can never alias versions.
var subVerTick atomic.Uint64

// linkState is the reservation bookkeeping of one physical link, following
// the paper's decomposition: deterministic reservations D_L plus the
// sufficient statistics (sum of means, sum of variances) of the stochastic
// demands sharing S_L = C_L - D_L.
type linkState struct {
	cap        float64
	det        float64 // D_L
	sumMu      float64 // sum over stochastic demands of mu_{i,L}
	sumVar     float64 // sum over stochastic demands of sigma^2_{i,L}
	stochastic int     // number of stochastic demands carried
}

// NewLedger returns an empty ledger over the topology with bandwidth outage
// risk factor eps in (0, 1).
func NewLedger(topo *topology.Topology, eps float64) (*Ledger, error) {
	if eps <= 0 || eps >= 1 {
		return nil, fmt.Errorf("core: risk factor eps must be in (0, 1), got %v", eps)
	}
	l := &Ledger{
		topo:   topo,
		eps:    eps,
		c:      stats.PhiInv(1 - eps),
		links:  make([]linkState, topo.Len()),
		used:   make([]int, topo.Len()),
		faults: topology.NewFaults(topo),
		subVer: make([]uint64, topo.Len()),
	}
	for _, id := range topo.Links() {
		l.links[id].cap = topo.LinkCap(id)
	}
	return l, nil
}

// Clone returns an independent deep copy of the ledger sharing the same
// immutable topology. What-if explorations (capacity planning) mutate the
// clone freely without touching live state.
func (l *Ledger) Clone() *Ledger {
	c := &Ledger{
		topo:   l.topo,
		eps:    l.eps,
		c:      l.c,
		links:  make([]linkState, len(l.links)),
		used:   make([]int, len(l.used)),
		faults: l.faults.Clone(),
		subVer: make([]uint64, len(l.subVer)),
	}
	copy(c.links, l.links)
	copy(c.used, l.used)
	copy(c.subVer, l.subVer)
	return c
}

// Topology returns the topology the ledger tracks.
func (l *Ledger) Topology() *topology.Topology { return l.topo }

// Epsilon returns the ledger's risk factor.
func (l *Ledger) Epsilon() float64 { return l.eps }

// RiskConstant returns c = PhiInv(1 - eps).
func (l *Ledger) RiskConstant() float64 { return l.c }

// Occupancy returns the bandwidth occupancy ratio O_L of the link (paper
// Eq. 6): (D_L + sum mu_i + c*sqrt(sum sigma_i^2)) / C_L. The admission
// condition Eq. 4 holds if and only if O_L < 1.
func (l *Ledger) Occupancy(id topology.LinkID) float64 {
	return l.occupancy(id, 0, 0, 0)
}

// OccupancyWith returns the occupancy ratio the link would have if the
// given stochastic crossing demand were added.
func (l *Ledger) OccupancyWith(id topology.LinkID, d stats.Normal) float64 {
	return l.occupancy(id, 0, d.Mu, d.Var())
}

// OccupancyWithDet returns the occupancy ratio the link would have if a
// deterministic reservation of b were added.
func (l *Ledger) OccupancyWithDet(id topology.LinkID, b float64) float64 {
	return l.occupancy(id, b, 0, 0)
}

func (l *Ledger) occupancy(id topology.LinkID, addDet, addMu, addVar float64) float64 {
	s := &l.links[id]
	return (s.det + addDet + s.sumMu + addMu + l.c*sqrtNonNeg(s.sumVar+addVar)) / s.cap
}

// bumpSubtree stamps a fresh global tick on node v and every ancestor up
// to the root: the DP-visible state of those subtrees just changed. Link
// state of link id L lives on node L's uplink, which is inside the
// subtree of L and of every ancestor, so mutators bump from the node the
// change is anchored at.
func (l *Ledger) bumpSubtree(v topology.NodeID) {
	t := subVerTick.Add(1)
	for {
		l.subVer[v] = t
		p := l.topo.Node(v).Parent
		if p == topology.None {
			return
		}
		v = p
	}
}

// SubtreeVersion returns the subtree version of node v. Equal values —
// across the ledger's whole clone lineage — certify that no reservation
// or slot state inside v's subtree changed in between.
func (l *Ledger) SubtreeVersion(v topology.NodeID) uint64 { return l.subVer[v] }

// AddStochastic records a stochastic crossing demand on the link.
func (l *Ledger) AddStochastic(id topology.LinkID, d stats.Normal) {
	s := &l.links[id]
	s.sumMu += d.Mu
	s.sumVar += d.Var()
	s.stochastic++
	l.bumpSubtree(id)
}

// RemoveStochastic removes a previously added stochastic crossing demand.
func (l *Ledger) RemoveStochastic(id topology.LinkID, d stats.Normal) {
	s := &l.links[id]
	s.sumMu -= d.Mu
	s.sumVar -= d.Var()
	s.stochastic--
	clampState(s)
	l.bumpSubtree(id)
}

// AddDet records a deterministic reservation of b on the link.
func (l *Ledger) AddDet(id topology.LinkID, b float64) {
	l.links[id].det += b
	l.bumpSubtree(id)
}

// RemoveDet removes a previously added deterministic reservation.
func (l *Ledger) RemoveDet(id topology.LinkID, b float64) {
	s := &l.links[id]
	s.det -= b
	clampState(s)
	l.bumpSubtree(id)
}

// clampState zeroes tiny negative residues left by floating-point
// cancellation after demand removal.
func clampState(s *linkState) {
	if s.sumVar < 0 {
		s.sumVar = 0
	}
	if s.sumMu < 0 {
		s.sumMu = 0
	}
	if s.det < 0 {
		s.det = 0
	}
}

// LinkOutageProb returns the probability that the link's stochastic
// demand exceeds its sharing bandwidth S_L = C_L - D_L under the ledger's
// normal model: Pr(sum B_i > S_L) = 1 - Phi((S_L - sum mu) / sqrt(sum
// sigma^2)). For a link with no stochastic variance it is 0 when the
// deterministic load fits and 1 when it does not. Admitted state keeps
// this below eps on every link; after a degraded repair it is the honest
// per-link risk the tenant actually gets.
func (l *Ledger) LinkOutageProb(id topology.LinkID) float64 {
	s := &l.links[id]
	slack := s.cap - s.det - s.sumMu
	if s.sumVar <= 0 {
		if slack >= 0 {
			return 0
		}
		return 1
	}
	return 1 - stats.Phi(slack/math.Sqrt(s.sumVar))
}

// StochasticCount returns the number of stochastic demands on the link.
func (l *Ledger) StochasticCount(id topology.LinkID) int {
	return l.links[id].stochastic
}

// DetReserved returns the deterministic reservation D_L on the link.
func (l *Ledger) DetReserved(id topology.LinkID) float64 { return l.links[id].det }

// EffectiveStochastic returns the total effective bandwidth of the
// stochastic demands on the link, sum mu_i + c*sqrt(sum sigma_i^2) (the sum
// of the paper's effective amounts E_i^L).
func (l *Ledger) EffectiveStochastic(id topology.LinkID) float64 {
	s := &l.links[id]
	return s.sumMu + l.c*math.Sqrt(s.sumVar)
}

// MaxOccupancy returns the maximum occupancy ratio over all live links,
// the statistic the paper samples for Fig. 9. Links that are failed or
// stranded behind a failed link are skipped: their reservations are
// bookkeeping for jobs awaiting repair, not load the network carries. A
// topology without links (a single machine) returns 0.
func (l *Ledger) MaxOccupancy() float64 {
	maxOcc := 0.0
	for _, id := range l.topo.Links() {
		if !l.faults.Reachable(id) {
			continue
		}
		if o := l.Occupancy(id); o > maxOcc {
			maxOcc = o
		}
	}
	return maxOcc
}

// MaxOccupancyByLevel returns, for every link level of the tree, the
// maximum occupancy ratio among that level's links. Index 0 is the
// machine (host) links; the last index is the links just below the root.
// It locates which tier of the datacenter binds first.
func (l *Ledger) MaxOccupancyByLevel() []float64 {
	out := make([]float64, max(0, l.topo.Height()))
	for _, id := range l.topo.Links() {
		if !l.faults.Reachable(id) {
			continue
		}
		lvl := l.topo.Node(id).Level
		if o := l.Occupancy(id); o > out[lvl] {
			out[lvl] = o
		}
	}
	return out
}

// FreeSlots returns the number of empty VM slots on the machine. A machine
// that is failed, or unreachable behind a failed link, has none — so no
// allocator ever places a VM there.
func (l *Ledger) FreeSlots(m topology.NodeID) int {
	if !l.faults.Alive(m) {
		return 0
	}
	return l.topo.Node(m).Slots - l.used[m]
}

// SetOffline marks a machine in or out of service. Offline machines report
// zero free slots, so no allocator places VMs there; slots already in use
// keep their bookkeeping so releases stay consistent. It is equivalent to
// FailMachine/RestoreMachine on the fault overlay.
func (l *Ledger) SetOffline(m topology.NodeID, offline bool) {
	if offline {
		l.faults.FailMachine(m)
	} else {
		l.faults.RestoreMachine(m)
	}
}

// Offline reports whether the machine itself is failed (link-induced
// unreachability does not count; see Faults().Alive for the full check).
func (l *Ledger) Offline(m topology.NodeID) bool { return l.faults.MachineDown(m) }

// Faults exposes the ledger's fault overlay: runtime fail/restore of
// machines and links. Mutations through it immediately affect FreeSlots,
// LinkLive and every allocator decision on this ledger.
func (l *Ledger) Faults() *topology.Faults { return l.faults }

// LinkLive reports whether a link is usable: the link itself and every
// link above it on the path to the root are in service.
func (l *Ledger) LinkLive(id topology.LinkID) bool { return l.faults.Reachable(id) }

// UseSlots marks k slots on the machine as occupied. It panics if the
// machine lacks capacity, which would indicate an allocator bug.
func (l *Ledger) UseSlots(m topology.NodeID, k int) {
	if k < 0 || l.FreeSlots(m) < k {
		panic(fmt.Sprintf("core: UseSlots(%d, %d) with %d free", m, k, l.FreeSlots(m)))
	}
	l.used[m] += k
	l.bumpSubtree(m)
}

// ReleaseSlots returns k slots on the machine. It panics if more slots are
// released than were in use.
func (l *Ledger) ReleaseSlots(m topology.NodeID, k int) {
	if k < 0 || l.used[m] < k {
		panic(fmt.Sprintf("core: ReleaseSlots(%d, %d) with %d used", m, k, l.used[m]))
	}
	l.used[m] -= k
	l.bumpSubtree(m)
}

// TotalFreeSlots returns the number of empty VM slots in the datacenter.
func (l *Ledger) TotalFreeSlots() int {
	total := 0
	for _, m := range l.topo.Machines() {
		total += l.FreeSlots(m)
	}
	return total
}

func sqrtNonNeg(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return math.Sqrt(x)
}
