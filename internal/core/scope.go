package core

import (
	"fmt"

	"repro/internal/topology"
)

// planScope restricts every planning dynamic program of a Manager to one
// subtree of the topology. A scoped manager is the planning half of a
// pod-local shard controller (see internal/shard): it owns the full
// topology and ledger — node IDs, journal records and exported state stay
// globally addressed — but its DPs only ever visit, and its selection
// scans only ever pick, vertices inside the scope root's subtree. The
// subtree root's own uplink is still admission-checked (the vertex is not
// the tree root), which is exactly the paper's Eq. 4 condition on the
// pod's core uplink.
type planScope struct {
	root   topology.NodeID
	height int // level of the scope root; the level loop stops here
	// levels[l] is the subset of topo.AtLevel(l) inside the subtree, in
	// the same relative order, so scoped selection breaks ties exactly
	// like an unscoped scan restricted to the subtree.
	levels [][]topology.NodeID
}

// newPlanScope precomputes the per-level vertex lists of root's subtree
// by walking each node's path to the root of the tree.
func newPlanScope(topo *topology.Topology, root topology.NodeID) (*planScope, error) {
	if root < 0 || int(root) >= topo.Len() {
		return nil, fmt.Errorf("core: plan subtree root %d out of range", root)
	}
	s := &planScope{
		root:   root,
		height: topo.Node(root).Level,
		levels: make([][]topology.NodeID, topo.Node(root).Level+1),
	}
	inScope := func(v topology.NodeID) bool {
		for {
			if v == root {
				return true
			}
			p := topo.Node(v).Parent
			if p == topology.None {
				return false
			}
			v = p
		}
	}
	for level := 0; level <= s.height; level++ {
		for _, v := range topo.AtLevel(level) {
			if inScope(v) {
				s.levels[level] = append(s.levels[level], v)
			}
		}
	}
	return s, nil
}

// atLevel returns the in-scope vertices of one level.
func (s *planScope) atLevel(level int) []topology.NodeID { return s.levels[level] }

// scopeHeight and scopeAtLevel resolve the level iteration of a DP for an
// optional scope: nil means the whole tree.
func scopeHeight(topo *topology.Topology, s *planScope) int {
	if s == nil {
		return topo.Height()
	}
	return s.height
}

func scopeAtLevel(topo *topology.Topology, s *planScope, level int) []topology.NodeID {
	if s == nil {
		return topo.AtLevel(level)
	}
	return s.levels[level]
}

type planSubtreeOption topology.NodeID

func (o planSubtreeOption) apply(m *Manager) {
	s, err := newPlanScope(m.led.Topology(), topology.NodeID(o))
	if err != nil {
		// ManagerOption.apply cannot fail; an out-of-range root is a
		// programming error on the same footing as a bad topology index.
		panic(err)
	}
	m.scope = s
}

// WithPlanSubtree restricts the manager's planning DPs (homogeneous,
// substring-heterogeneous, pinned repair, headroom, dry runs) to the
// subtree rooted at root. Mutations addressed outside the subtree are
// still accepted through Replay/CommitExternal — the ledger covers the
// whole topology — but the manager will never *place* VMs outside it.
// Scoped managers plan heterogeneous requests with the substring
// algorithm regardless of WithHeteroAlgorithm (the exact and first-fit
// allocators have no scoped variants).
func WithPlanSubtree(root topology.NodeID) ManagerOption { return planSubtreeOption(root) }

// PlanSubtree returns the manager's plan scope root and true when it was
// built with WithPlanSubtree, or (topology.None, false) otherwise.
func (m *Manager) PlanSubtree() (topology.NodeID, bool) {
	if m.scope == nil {
		return topology.None, false
	}
	return m.scope.root, true
}
