package core_test

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/topology"
)

// ExampleManager shows the full admit-release cycle on the paper's Fig. 3
// topology: two machines with 5 slots behind 50 Mbps links.
func ExampleManager() {
	topo, err := topology.NewFromSpec(topology.Spec{Children: []topology.Spec{
		{UpCap: 50, Slots: 5},
		{UpCap: 50, Slots: 5},
	}})
	if err != nil {
		fmt.Println(err)
		return
	}
	mgr, err := core.NewManager(topo, 0.05)
	if err != nil {
		fmt.Println(err)
		return
	}
	req, err := core.NewDeterministic(6, 10) // the paper's example request
	if err != nil {
		fmt.Println(err)
		return
	}
	alloc, err := mgr.AllocateHomog(req)
	if err != nil {
		fmt.Println("rejected:", err)
		return
	}
	fmt.Printf("max occupancy while running: %.2f\n", mgr.MaxOccupancy())
	if err := mgr.Release(alloc.ID); err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("max occupancy after release: %.2f\n", mgr.MaxOccupancy())
	// Output:
	// max occupancy while running: 0.20
	// max occupancy after release: 0.00
}

// ExampleCrossingHomog computes the bandwidth a stochastic cluster places
// on a link that splits it 2 / 4: the moment-matched min of the two sides'
// aggregate demands (paper Lemma 1).
func ExampleCrossingHomog() {
	demand := stats.Normal{Mu: 100, Sigma: 50}
	cross := core.CrossingHomog(demand, 2, 6)
	// Slightly below the smaller side's 200 Mbps aggregate: the min with
	// the larger side trims the upper tail.
	fmt.Printf("crossing demand: mean %.1f Mbps, sd %.1f Mbps\n", cross.Mu, cross.Sigma)
	// Output: crossing demand: mean 197.4 Mbps, sd 68.7 Mbps
}

// ExampleManager_rejection shows how rejection is reported.
func ExampleManager_rejection() {
	topo, _ := topology.NewFromSpec(topology.Spec{Children: []topology.Spec{
		{UpCap: 50, Slots: 2},
	}})
	mgr, _ := core.NewManager(topo, 0.05)
	req, _ := core.NewHomogeneous(3, stats.Normal{Mu: 10, Sigma: 1})
	_, err := mgr.AllocateHomog(req)
	fmt.Println(errors.Is(err, core.ErrNoCapacity))
	// Output: true
}
