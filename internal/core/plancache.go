package core

import (
	"fmt"
	"math"
	"reflect"
	"strconv"
	"strings"
	"sync"

	"repro/internal/stats"
	"repro/internal/topology"
)

// This file implements the incremental planning cache: per-subtree DP
// tables memoized across admission requests.
//
// The key observation is that a vertex's DP record — the allocable VM
// set, per-count optimal in-subtree occupancy and split choices — is a
// pure function of (request demand params, N, policy) and the ledger
// state inside the vertex's subtree plus its own uplink. The ledger
// stamps a subtree version on every node (Ledger.SubtreeVersion): a
// mutation at link or machine x bumps x and all its ancestors with one
// globally unique tick, so a matching version certifies the whole
// subtree — including every descendant's record — is unchanged. A
// steady-state commit therefore invalidates only the O(depth) vertices
// on its touched paths, and the next plan for the same demand shape
// recomputes just those records instead of the whole tree.
//
// Fault state is the one input that is NOT subtree-local: FreeSlots
// depends on reachability through links above the vertex. Entries
// stamp Faults().Epoch() and drop all records when it moves. This is
// sound for every ledger the manager plans on (live ledger, shared
// snapshots, batch overlays) because only the live ledger's fault
// overlay is ever mutated; clones never diverge on fault state, so an
// epoch value identifies one fault configuration.
//
// The compute paths below mirror homogCompute/substrCompute and the
// build/selection code operation for operation, so cached plans are
// bit-identical to cold ones — the equivalence suite in
// plancache_test.go and a sampled -tags invariants cross-check hold
// them to that.

const (
	// maxHomogPlanEntries / maxHeteroPlanEntries bound the number of
	// distinct (demand, N, policy) shapes kept warm. Hetero tables are
	// O(n^2) per vertex and so get a tighter cap. Eviction is FIFO over
	// an insertion-order slice — never a map iteration, which would leak
	// nondeterministic order into eviction choices.
	maxHomogPlanEntries  = 12
	maxHeteroPlanEntries = 4

	// planCacheSampleEvery is the sampling period of the -tags invariants
	// cross-check: every Nth cached plan is recomputed cold and compared.
	planCacheSampleEvery = 32
)

// planCacheStats is a snapshot of the cache counters.
type planCacheStats struct {
	Hits          int64 // plans served from an existing entry
	Misses        int64 // plans that had to build a new entry
	Invalidations int64 // stale vertex records recomputed on existing entries
	Evictions     int64 // entries dropped by the FIFO bound
}

// planCache memoizes per-subtree DP tables across admissions. One per
// Manager; safe for concurrent use. Plans for the same key serialize on
// the entry's mutex (they would recompute identical records anyway);
// plans for different keys run concurrently.
type planCache struct {
	mu         sync.Mutex
	homog      map[homogKey]*homogEntry
	hetero     map[string]*substrEntry
	homogFIFO  []homogKey
	heteroFIFO []string
	stats      planCacheStats
	sampleTick int64
}

func newPlanCache() *planCache {
	return &planCache{
		homog:  make(map[homogKey]*homogEntry),
		hetero: make(map[string]*substrEntry),
	}
}

// homogKey identifies one homogeneous DP table shape. The demand is
// canonicalized (canonDemand) so equal effective demands share entries.
type homogKey struct {
	demand stats.Normal
	n      int
	policy Policy
}

// cachedHomogRec is the persistent counterpart of homogRecord: same DP
// content, but backed by entry-owned slices (arena slices live only one
// call) plus the subtree version the record was computed under.
type cachedHomogRec struct {
	ver    uint64
	filled bool
	cap    int
	optIn  []float64 // len n+1
	upOcc  []float64 // len n+1
	alloc  []bool    // len n+1
	choice [][]int32 // per child, len n+1
}

// homogEntry holds one memoized homogeneous DP table. All fields are
// guarded by mu; the fill path writes recs in place, readers go through
// cachedRecords.
type homogEntry struct {
	mu       sync.Mutex
	n        int
	policy   Policy
	demand   stats.Normal   // canonical
	crossing []stats.Normal // crossing[m]: demand on a link with m of n VMs below
	epoch    uint64         // Faults().Epoch() the records were computed under
	epochSet bool
	recs     []cachedHomogRec // indexed by NodeID; nil until the first plan
	acc      []float64        // combine scratch, len n+1
	next     []float64
}

// cachedRecords returns the entry's DP table for read-only use by the
// selection scan and placement reconstruction. The tables are
// snapshot-derived shared state (the snapshotro analyzer tracks this
// accessor): all writes go through the fill path, never through the
// returned view.
func (e *homogEntry) cachedRecords() []cachedHomogRec { return e.recs }

// homogEntryFor returns the entry for the request's table shape,
// creating (and possibly evicting) under the cache lock.
func (c *planCache) homogEntryFor(req Homogeneous, policy Policy) (*homogEntry, bool) {
	key := homogKey{demand: canonDemand(req.Demand), n: req.N, policy: policy}
	c.mu.Lock()
	defer c.mu.Unlock()
	if e := c.homog[key]; e != nil {
		c.stats.Hits++
		return e, true
	}
	c.stats.Misses++
	e := &homogEntry{
		n:        key.n,
		policy:   policy,
		demand:   key.demand,
		crossing: crossingTableHomog(key.demand, key.n),
	}
	c.homog[key] = e
	c.homogFIFO = append(c.homogFIFO, key)
	if len(c.homogFIFO) > maxHomogPlanEntries {
		oldest := c.homogFIFO[0]
		c.homogFIFO = c.homogFIFO[1:]
		delete(c.homog, oldest)
		c.stats.Evictions++
	}
	return e, false
}

// AllocateHomog plans a homogeneous request against led using the cache.
// Bit-identical to core's AllocateHomog on the same ledger state. A
// non-nil scope confines planning to its subtree; entries are per-manager
// and a manager's scope is immutable, so cached records never mix scopes.
func (c *planCache) allocateHomog(led *Ledger, req Homogeneous, policy Policy, scope *planScope) (Placement, []linkDemand, error) {
	if err := req.Validate(); err != nil {
		return Placement{}, nil, err
	}
	e, hit := c.homogEntryFor(req, policy)
	e.mu.Lock()
	p, contribs, recomputed, err := e.plan(led, scope)
	e.mu.Unlock()
	c.notePlan(hit, recomputed)
	if invariantsEnabled && c.shouldSample() {
		fp, _, ferr := allocateHomogScoped(led, req, policy, 1, scope)
		checkCachedPlan("homog", p, err, fp, ferr)
	}
	return p, contribs, err
}

// plan runs the level-order DP reusing every record whose subtree
// version still matches. Callers hold e.mu. Returns the number of
// vertex records recomputed.
func (e *homogEntry) plan(led *Ledger, scope *planScope) (Placement, []linkDemand, int, error) {
	topo := led.Topology()
	if e.recs == nil {
		e.recs = make([]cachedHomogRec, topo.Len())
		e.acc = make([]float64, e.n+1)
		e.next = make([]float64, e.n+1)
	}
	if ep := led.Faults().Epoch(); !e.epochSet || e.epoch != ep {
		// Fault state changed: reachability is not subtree-local, so the
		// whole table is suspect.
		for i := range e.recs {
			e.recs[i].filled = false
		}
		e.epoch = ep
		e.epochSet = true
	}
	recomputed := 0
	for level := 0; level <= scopeHeight(topo, scope); level++ {
		verts := scopeAtLevel(topo, scope, level)
		for _, v := range verts {
			r := &e.recs[v]
			if r.filled && r.ver == led.SubtreeVersion(v) {
				continue // children are current too: any bump below v bumps v
			}
			e.computeVertex(led, topo, v)
			r.ver = led.SubtreeVersion(v)
			r.filled = true
			recomputed++
		}
		// Selection mirrors AllocateHomogWorkers: sequential, in topology
		// order, so tie-breaking matches the cold path exactly.
		recs := e.cachedRecords()
		var (
			best    topology.NodeID = topology.None
			bestVal                 = infeasible
		)
		for _, v := range verts {
			rec := &recs[v]
			if rec.cap < e.n || rec.optIn[e.n] == infeasible {
				continue
			}
			val := rec.optIn[e.n]
			if e.policy == FirstFeasible && best != topology.None {
				continue
			}
			if val < bestVal || best == topology.None {
				best, bestVal = v, val
			}
		}
		if best != topology.None {
			var p Placement
			cachedHomogBuild(topo, recs, best, e.n, &p)
			p.normalize()
			req := Homogeneous{N: e.n, Demand: e.demand}
			return p, homogContributions(topo, req, &p), recomputed, nil
		}
	}
	return Placement{}, nil, recomputed, fmt.Errorf("%w: %v", ErrNoCapacity, Homogeneous{N: e.n, Demand: e.demand})
}

// computeVertex fills v's record from the ledger and the children's
// (already current) records — the same arithmetic as homogCompute, but
// into persistent storage. Every slot in [0, cap] is written before it
// can be read, so stale values from a previous fill never leak.
func (e *homogEntry) computeVertex(led *Ledger, topo *topology.Topology, v topology.NodeID) {
	node := topo.Node(v)
	r := &e.recs[v]
	n := e.n
	if r.optIn == nil {
		r.optIn = make([]float64, n+1)
		r.upOcc = make([]float64, n+1)
		r.alloc = make([]bool, n+1)
	}
	if node.IsMachine() {
		r.cap = min(n, led.FreeSlots(v))
		for s := 0; s <= r.cap; s++ {
			r.optIn[s] = 0
		}
	} else {
		capV := 0
		for _, c := range node.Children {
			capV += e.recs[c].cap
		}
		r.cap = min(n, capV)
		acc, next := e.acc, e.next
		acc[0] = 0
		for s := 1; s <= r.cap; s++ {
			acc[s] = infeasible
		}
		if len(r.choice) != len(node.Children) {
			r.choice = make([][]int32, len(node.Children))
		}
		reach := 0
		for i, c := range node.Children {
			child := &e.recs[c]
			pick := r.choice[i]
			if pick == nil {
				pick = make([]int32, n+1)
				r.choice[i] = pick
			}
			for s := 0; s <= r.cap; s++ {
				next[s] = infeasible
				pick[s] = -1
			}
			for h := 0; h <= reach; h++ {
				if acc[h] == infeasible {
					continue
				}
				for s := 0; s <= child.cap && h+s <= r.cap; s++ {
					if !child.alloc[s] {
						continue
					}
					switch e.policy {
					case MinMaxOccupancy:
						val := math.Max(acc[h], math.Max(child.optIn[s], child.upOcc[s]))
						if val < next[h+s] {
							next[h+s] = val
							pick[h+s] = int32(s)
						}
					case GreedyPack:
						next[h+s] = 0
						pick[h+s] = int32(s)
					default: // FirstFeasible keeps the split found first
						if next[h+s] == infeasible {
							next[h+s] = 0
							pick[h+s] = int32(s)
						}
					}
				}
			}
			acc, next = next, acc
			reach = min(r.cap, reach+child.cap)
		}
		copy(r.optIn[:r.cap+1], acc[:r.cap+1])
	}

	isRoot := node.Parent == topology.None
	for s := 0; s <= r.cap; s++ {
		r.alloc[s] = false
		if r.optIn[s] == infeasible {
			continue
		}
		if isRoot {
			r.alloc[s] = true
			continue
		}
		r.upOcc[s] = led.OccupancyWith(v, e.crossing[s])
		r.alloc[s] = r.upOcc[s] < 1
	}
}

// cachedHomogBuild is homogBuild over the persistent records.
func cachedHomogBuild(topo *topology.Topology, records []cachedHomogRec, v topology.NodeID, s int, p *Placement) {
	if s == 0 {
		return
	}
	node := topo.Node(v)
	if node.IsMachine() {
		p.Entries = append(p.Entries, PlacementEntry{Machine: v, Count: s})
		return
	}
	rec := &records[v]
	for i := len(node.Children) - 1; i >= 0; i-- {
		e := int(rec.choice[i][s])
		if e < 0 {
			panic(fmt.Sprintf("core: no cached choice for child %d of node %d at sum %d", i, v, s))
		}
		cachedHomogBuild(topo, records, node.Children[i], e, p)
		s -= e
	}
	if s != 0 {
		panic(fmt.Sprintf("core: cached reconstruction at node %d left %d VMs unassigned", v, s))
	}
}

// --- heterogeneous substring tables ---

// cachedSubstrRec is the persistent counterpart of substrRecord. Slices
// are sized for the full (n+1) x (n+1) index space so the (length, a)
// layout stays valid as maxLen moves between fills.
type cachedSubstrRec struct {
	ver    uint64
	filled bool
	maxLen int
	n      int
	optIn  []float64
	upOcc  []float64
	alloc  []bool
	choice [][]int32 // per child, len (n+1)*(n+1)
}

func (r *cachedSubstrRec) idx(length, a int) int { return length*(r.n+1) + a }

// substrEntry holds one memoized substring-DP table, keyed by the
// percentile-sorted canonical demand sequence — permutations of the
// same demand multiset share it; the caller's order slice maps substring
// positions back to its request's VM indices.
type substrEntry struct {
	mu       sync.Mutex
	n        int
	policy   Policy
	sorted   []stats.Normal // canonical, percentile-sorted
	prefix   *demandPrefix
	epoch    uint64
	epochSet bool
	recs     []cachedSubstrRec
	acc      []float64 // combine scratch, len (n+1)*(n+1)
	next     []float64
}

// cachedRecords is the read-only view of the substring table; see
// homogEntry.cachedRecords.
func (e *substrEntry) cachedRecords() []cachedSubstrRec { return e.recs }

// substrCacheKey renders the sorted canonical demand sequence and policy
// as an exact-value key (float bits, not formatted decimals).
func substrCacheKey(sorted []stats.Normal, policy Policy) string {
	var b strings.Builder
	b.Grow(2 + 34*len(sorted))
	b.WriteString(strconv.Itoa(int(policy)))
	for _, d := range sorted {
		b.WriteByte(':')
		b.WriteString(strconv.FormatUint(math.Float64bits(d.Mu), 16))
		b.WriteByte(',')
		b.WriteString(strconv.FormatUint(math.Float64bits(d.Sigma), 16))
	}
	return b.String()
}

func (c *planCache) substrEntryFor(key string, sorted []stats.Normal, policy Policy) (*substrEntry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e := c.hetero[key]; e != nil {
		c.stats.Hits++
		return e, true
	}
	c.stats.Misses++
	e := &substrEntry{
		n:      len(sorted),
		policy: policy,
		sorted: sorted,
		prefix: newDemandPrefix(sorted),
	}
	c.hetero[key] = e
	c.heteroFIFO = append(c.heteroFIFO, key)
	if len(c.heteroFIFO) > maxHeteroPlanEntries {
		oldest := c.heteroFIFO[0]
		c.heteroFIFO = c.heteroFIFO[1:]
		delete(c.hetero, oldest)
		c.stats.Evictions++
	}
	return e, false
}

// allocateHeteroSubstring plans a heterogeneous request with the cached
// substring DP. Bit-identical to AllocateHeteroSubstring.
func (c *planCache) allocateHeteroSubstring(led *Ledger, req Heterogeneous, policy Policy, scope *planScope) (Placement, []linkDemand, error) {
	if err := req.Validate(); err != nil {
		return Placement{}, nil, err
	}
	order, sorted := orderByPercentile(req)
	for i := range sorted {
		sorted[i] = canonDemand(sorted[i])
	}
	e, hit := c.substrEntryFor(substrCacheKey(sorted, policy), sorted, policy)
	e.mu.Lock()
	p, contribs, recomputed, err := e.plan(led, req, order, scope)
	e.mu.Unlock()
	c.notePlan(hit, recomputed)
	if invariantsEnabled && c.shouldSample() {
		fp, _, ferr := allocateHeteroSubstringScoped(led, req, policy, 1, scope)
		checkCachedPlan("hetero", p, err, fp, ferr)
	}
	return p, contribs, err
}

// plan runs the substring DP reusing current records; callers hold e.mu.
// order maps substring positions to the caller's VM indices.
func (e *substrEntry) plan(led *Ledger, req Heterogeneous, order []int, scope *planScope) (Placement, []linkDemand, int, error) {
	topo := led.Topology()
	n := e.n
	if e.recs == nil {
		e.recs = make([]cachedSubstrRec, topo.Len())
		size := (n + 1) * (n + 1)
		e.acc = make([]float64, size)
		e.next = make([]float64, size)
	}
	if ep := led.Faults().Epoch(); !e.epochSet || e.epoch != ep {
		for i := range e.recs {
			e.recs[i].filled = false
		}
		e.epoch = ep
		e.epochSet = true
	}
	recomputed := 0
	for level := 0; level <= scopeHeight(topo, scope); level++ {
		verts := scopeAtLevel(topo, scope, level)
		for _, v := range verts {
			r := &e.recs[v]
			if r.filled && r.ver == led.SubtreeVersion(v) {
				continue
			}
			e.computeVertex(led, topo, v)
			r.ver = led.SubtreeVersion(v)
			r.filled = true
			recomputed++
		}
		recs := e.cachedRecords()
		var (
			best    topology.NodeID = topology.None
			bestVal                 = infeasible
		)
		for _, v := range verts {
			rec := &recs[v]
			if rec.maxLen < n {
				continue
			}
			full := rec.idx(n, 0)
			if rec.optIn[full] == infeasible {
				continue
			}
			val := rec.optIn[full]
			if e.policy == FirstFeasible && best != topology.None {
				continue
			}
			if val < bestVal || best == topology.None {
				best, bestVal = v, val
			}
		}
		if best != topology.None {
			var p Placement
			cachedSubstrBuild(topo, recs, order, best, 0, n, &p)
			p.normalize()
			return p, heteroContributions(topo, req, &p), recomputed, nil
		}
	}
	return Placement{}, nil, recomputed, fmt.Errorf("%w: %v", ErrNoCapacity, req)
}

// computeVertex fills v's substring record — the same arithmetic as
// substrCompute, into persistent storage. Indices outside the current
// (maxLen, n) ranges may hold stale values; every consumer loop is
// bounded by the current caps, so they are never read.
func (e *substrEntry) computeVertex(led *Ledger, topo *topology.Topology, v topology.NodeID) {
	node := topo.Node(v)
	r := &e.recs[v]
	n := e.n
	if r.optIn == nil {
		size := (n + 1) * (n + 1)
		r.n = n
		r.optIn = make([]float64, size)
		r.upOcc = make([]float64, size)
		r.alloc = make([]bool, size)
	}
	if node.IsMachine() {
		r.maxLen = min(n, led.FreeSlots(v))
		size := (r.maxLen + 1) * (n + 1)
		for i := 0; i < size; i++ {
			r.optIn[i] = 0
		}
	} else {
		capV := 0
		for _, c := range node.Children {
			capV += e.recs[c].maxLen
		}
		r.maxLen = min(n, capV)
		size := (r.maxLen + 1) * (n + 1)
		acc, next := e.acc[:size], e.next[:size]
		for i := range acc {
			acc[i] = infeasible
		}
		for a := 0; a <= n; a++ {
			acc[r.idx(0, a)] = 0
		}
		if len(r.choice) != len(node.Children) {
			r.choice = make([][]int32, len(node.Children))
		}
		reach := 0
		for i, c := range node.Children {
			child := &e.recs[c]
			pick := r.choice[i]
			if pick == nil {
				pick = make([]int32, (n+1)*(n+1))
				r.choice[i] = pick
			}
			for j := range next {
				next[j] = infeasible
				pick[j] = -1
			}
			for aLen := 0; aLen <= reach; aLen++ {
				for a := 0; a+aLen <= n; a++ {
					cur := acc[r.idx(aLen, a)]
					if cur == infeasible {
						continue
					}
					k := a + aLen
					maxChildLen := min(child.maxLen, min(r.maxLen-aLen, n-k))
					for cl := 0; cl <= maxChildLen; cl++ {
						cIdx := child.idx(cl, k)
						if !child.alloc[cIdx] {
							continue
						}
						tIdx := r.idx(aLen+cl, a)
						val := 0.0
						if e.policy == MinMaxOccupancy {
							val = math.Max(cur, math.Max(child.optIn[cIdx], child.upOcc[cIdx]))
						} else if next[tIdx] != infeasible {
							continue
						}
						if val < next[tIdx] {
							next[tIdx] = val
							pick[tIdx] = int32(k)
						}
					}
				}
			}
			acc, next = next, acc
			reach = min(r.maxLen, reach+child.maxLen)
		}
		copy(r.optIn[:size], acc[:size])
	}

	isRoot := node.Parent == topology.None
	for length := 0; length <= r.maxLen; length++ {
		for a := 0; a+length <= n; a++ {
			i := r.idx(length, a)
			r.alloc[i] = false
			if r.optIn[i] == infeasible {
				continue
			}
			if isRoot {
				r.alloc[i] = true
				continue
			}
			r.upOcc[i] = led.OccupancyWith(v, e.prefix.crossing(a, a+length))
			r.alloc[i] = r.upOcc[i] < 1
		}
	}
}

// cachedSubstrBuild is substrBuild over the persistent records.
func cachedSubstrBuild(topo *topology.Topology, records []cachedSubstrRec, order []int,
	v topology.NodeID, a, b int, p *Placement) {
	if a == b {
		return
	}
	node := topo.Node(v)
	if node.IsMachine() {
		vms := make([]int, 0, b-a)
		for pos := a; pos < b; pos++ {
			vms = append(vms, order[pos])
		}
		p.Entries = append(p.Entries, PlacementEntry{Machine: v, Count: b - a, VMs: vms})
		return
	}
	rec := &records[v]
	for i := len(node.Children) - 1; i >= 0; i-- {
		k := int(rec.choice[i][rec.idx(b-a, a)])
		if k < 0 {
			panic(fmt.Sprintf("core: no cached split for child %d of node %d over [%d,%d)", i, v, a, b))
		}
		cachedSubstrBuild(topo, records, order, node.Children[i], k, b, p)
		b = k
	}
	if b != a {
		panic(fmt.Sprintf("core: cached reconstruction at node %d left [%d,%d) unassigned", v, a, b))
	}
}

// --- counters and the sampled equivalence check ---

// notePlan folds one plan's cache effects into the counters: recomputes
// on a pre-existing entry are invalidations (a commit or fault moved the
// versions); a fresh entry's full fill is already accounted as a miss.
func (c *planCache) notePlan(hit bool, recomputed int) {
	if !hit || recomputed == 0 {
		return
	}
	c.mu.Lock()
	c.stats.Invalidations += int64(recomputed)
	c.mu.Unlock()
}

// snapshot returns the current counters.
func (c *planCache) snapshot() planCacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// shouldSample gates the invariants-build cross-check to every
// planCacheSampleEvery-th cached plan. Counter-based, so sampling stays
// deterministic for a deterministic call sequence.
func (c *planCache) shouldSample() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sampleTick++
	return c.sampleTick%planCacheSampleEvery == 1
}

// checkCachedPlan panics unless the cached plan matches a cold DP run on
// the same ledger state — the bit-identical contract, spot-checked at
// runtime under -tags invariants.
func checkCachedPlan(kind string, cached Placement, cachedErr error, cold Placement, coldErr error) {
	if (cachedErr == nil) != (coldErr == nil) {
		panic(fmt.Sprintf("core: invariant violation: cached %s plan feasibility (err=%v) differs from cold DP (err=%v)", kind, cachedErr, coldErr))
	}
	if cachedErr != nil {
		return
	}
	if !reflect.DeepEqual(cached.Entries, cold.Entries) {
		panic(fmt.Sprintf("core: invariant violation: cached %s plan differs from cold DP:\ncached: %v\ncold:   %v", kind, &cached, &cold))
	}
}
