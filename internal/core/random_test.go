package core

import (
	"math"
	"testing"

	"repro/internal/stats"
	"repro/internal/topology"
)

// randomSpec grows a random tree topology: depth up to 3, fanout up to 4,
// machines with 1-4 slots, link capacities wide enough to be sometimes
// binding.
func randomSpec(r *stats.Rand, depth int) topology.Spec {
	if depth == 0 || r.Float64() < 0.25 {
		return topology.Spec{
			UpCap: r.UniformRange(20, 120),
			Slots: r.UniformInt(1, 4),
		}
	}
	n := r.UniformInt(1, 4)
	s := topology.Spec{UpCap: r.UniformRange(50, 300)}
	for i := 0; i < n; i++ {
		s.Children = append(s.Children, randomSpec(r, depth-1))
	}
	return s
}

func randomTopology(r *stats.Rand) *topology.Topology {
	for {
		spec := randomSpec(r, 3)
		spec.UpCap = 0 // root has no uplink
		if len(spec.Children) == 0 {
			continue // a bare machine is legal but uninteresting here
		}
		tp, err := topology.NewFromSpec(spec)
		if err != nil {
			continue
		}
		if tp.TotalSlots() >= 4 {
			return tp
		}
	}
}

// TestHomogRandomTopologies fuzzes Algorithm 1 across random topologies,
// background states and requests: every returned placement must validate,
// and committing then releasing must restore the ledger.
func TestHomogRandomTopologies(t *testing.T) {
	r := stats.NewRand(8888)
	admitted := 0
	for trial := 0; trial < 150; trial++ {
		tp := randomTopology(r)
		led, err := NewLedger(tp, 0.05)
		if err != nil {
			t.Fatalf("trial %d: NewLedger: %v", trial, err)
		}
		for _, link := range tp.Links() {
			if r.Float64() < 0.4 {
				led.AddDet(link, r.UniformRange(0, 0.4*tp.LinkCap(link)))
			}
		}
		before := snapshotOccupancies(led)

		n := r.UniformInt(1, min(10, tp.TotalSlots()))
		req := Homogeneous{N: n, Demand: stats.Normal{Mu: r.UniformRange(1, 15), Sigma: r.UniformRange(0, 6)}}
		policy := MinMaxOccupancy
		if trial%2 == 1 {
			policy = FirstFeasible
		}
		p, contribs, err := AllocateHomog(led, req, policy)
		if err != nil {
			continue
		}
		admitted++
		if verr := ValidatePlacement(led, contribs, &p, n); verr != nil {
			t.Fatalf("trial %d: invalid placement on random topology: %v", trial, verr)
		}
		commit(led, &p, contribs)
		for _, link := range tp.Links() {
			if occ := led.Occupancy(link); occ >= 1 {
				t.Fatalf("trial %d: link %d occupancy %v >= 1 after commit", trial, link, occ)
			}
		}
		rollback(led, &p, contribs)
		checkOccupanciesRestored(t, led, before, trial)
	}
	if admitted < 50 {
		t.Fatalf("only %d of 150 random trials admitted; generator too hostile", admitted)
	}
}

// TestHeteroRandomTopologies fuzzes the substring heuristic and first fit
// the same way.
func TestHeteroRandomTopologies(t *testing.T) {
	r := stats.NewRand(9999)
	admitted := 0
	for trial := 0; trial < 100; trial++ {
		tp := randomTopology(r)
		led, err := NewLedger(tp, 0.05)
		if err != nil {
			t.Fatalf("trial %d: NewLedger: %v", trial, err)
		}
		for _, link := range tp.Links() {
			if r.Float64() < 0.3 {
				led.AddStochastic(link, stats.Normal{Mu: r.UniformRange(0, 8), Sigma: r.UniformRange(0, 4)})
			}
		}
		before := snapshotOccupancies(led)

		n := r.UniformInt(1, min(8, tp.TotalSlots()))
		req := randHetero(r, n, 1, 12)
		var (
			p        Placement
			contribs []linkDemand
		)
		if trial%2 == 0 {
			p, contribs, err = AllocateHeteroSubstring(led, req, MinMaxOccupancy)
		} else {
			p, contribs, err = AllocateFirstFit(led, req)
		}
		if err != nil {
			continue
		}
		admitted++
		if verr := ValidatePlacement(led, contribs, &p, n); verr != nil {
			t.Fatalf("trial %d: invalid placement: %v", trial, verr)
		}
		commit(led, &p, contribs)
		rollback(led, &p, contribs)
		checkOccupanciesRestored(t, led, before, trial)
	}
	if admitted < 30 {
		t.Fatalf("only %d of 100 random trials admitted", admitted)
	}
}

func snapshotOccupancies(led *Ledger) []float64 {
	links := led.Topology().Links()
	out := make([]float64, len(links))
	for i, l := range links {
		out[i] = led.Occupancy(l)
	}
	return out
}

func checkOccupanciesRestored(t *testing.T, led *Ledger, before []float64, trial int) {
	t.Helper()
	for i, l := range led.Topology().Links() {
		if after := led.Occupancy(l); math.Abs(after-before[i]) > 1e-9 {
			t.Fatalf("trial %d: link %d occupancy %v != %v after release", trial, l, after, before[i])
		}
	}
}

// TestHomogDeterministicPlacements: the DP must be a pure function of the
// ledger state — identical inputs give identical placements.
func TestHomogDeterministicPlacements(t *testing.T) {
	r := stats.NewRand(4242)
	for trial := 0; trial < 30; trial++ {
		tp := randomTopology(r)
		led, err := NewLedger(tp, 0.05)
		if err != nil {
			t.Fatal(err)
		}
		n := r.UniformInt(1, min(8, tp.TotalSlots()))
		req := Homogeneous{N: n, Demand: stats.Normal{Mu: 5, Sigma: 2}}
		p1, _, err1 := AllocateHomog(led, req, MinMaxOccupancy)
		p2, _, err2 := AllocateHomog(led, req, MinMaxOccupancy)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("trial %d: inconsistent feasibility", trial)
		}
		if err1 != nil {
			continue
		}
		if p1.String() != p2.String() {
			t.Fatalf("trial %d: placements differ:\n%v\n%v", trial, &p1, &p2)
		}
	}
}
