package core

import (
	"strings"
	"testing"

	"repro/internal/stats"
	"repro/internal/topology"
)

func TestPlacementNormalize(t *testing.T) {
	p := Placement{Entries: []PlacementEntry{
		{Machine: 5, Count: 2},
		{Machine: 3, Count: 1},
		{Machine: 5, Count: 1, VMs: nil},
		{Machine: 7, Count: 0}, // dropped
	}}
	p.normalize()
	if len(p.Entries) != 2 {
		t.Fatalf("entries = %d, want 2", len(p.Entries))
	}
	if p.Entries[0].Machine != 3 || p.Entries[1].Machine != 5 {
		t.Errorf("order = %v", p.Entries)
	}
	if p.Entries[1].Count != 3 {
		t.Errorf("merged count = %d, want 3", p.Entries[1].Count)
	}
	if p.TotalVMs() != 4 {
		t.Errorf("TotalVMs = %d, want 4", p.TotalVMs())
	}
}

func TestPlacementString(t *testing.T) {
	p := Placement{Entries: []PlacementEntry{{Machine: 2, Count: 3}}}
	if got := p.String(); !strings.Contains(got, "m2=3") {
		t.Errorf("String = %q", got)
	}
}

func TestValidatePlacementErrors(t *testing.T) {
	led := newTestLedger(t, fig3Topology(t), 0.05)
	m := led.Topology().Machines()

	tests := []struct {
		name string
		p    Placement
		want int
	}{
		{"wrong total", Placement{Entries: []PlacementEntry{{Machine: m[0], Count: 2}}}, 3},
		{"duplicate machine", Placement{Entries: []PlacementEntry{
			{Machine: m[0], Count: 1}, {Machine: m[0], Count: 1}}}, 2},
		{"not a machine", Placement{Entries: []PlacementEntry{
			{Machine: led.Topology().Root(), Count: 2}}}, 2},
		{"zero count", Placement{Entries: []PlacementEntry{{Machine: m[0], Count: 0}}}, 0},
		{"over slots", Placement{Entries: []PlacementEntry{{Machine: m[0], Count: 9}}}, 9},
		{"vm list mismatch", Placement{Entries: []PlacementEntry{
			{Machine: m[0], Count: 2, VMs: []int{0}}}}, 2},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := ValidatePlacement(led, nil, &tt.p, tt.want); err == nil {
				t.Error("want error, got nil")
			}
		})
	}
}

func TestValidatePlacementLinkViolation(t *testing.T) {
	led := newTestLedger(t, fig3Topology(t), 0.05)
	m := led.Topology().Machines()[0]
	p := Placement{Entries: []PlacementEntry{{Machine: m, Count: 1}}}
	contribs := []linkDemand{{link: m, demand: stats.Normal{Mu: 60}, det: true}} // 60 > 50 cap
	if err := ValidatePlacement(led, contribs, &p, 1); err == nil {
		t.Error("link violation accepted")
	}
}

func TestPlacementSpread(t *testing.T) {
	tp := mustTopo(smallThreeTier())
	ms := tp.Machines() // 4 machines: 2 per rack

	oneMachine := Placement{Entries: []PlacementEntry{{Machine: ms[0], Count: 2}}}
	s := PlacementSpread(tp, &oneMachine)
	if s.Machines != 1 || s.Racks != 1 || s.Level != 0 {
		t.Errorf("one machine spread = %+v", s)
	}

	oneRack := Placement{Entries: []PlacementEntry{
		{Machine: ms[0], Count: 1}, {Machine: ms[1], Count: 1}}}
	s = PlacementSpread(tp, &oneRack)
	if s.Machines != 2 || s.Racks != 1 || s.Level != 1 {
		t.Errorf("one rack spread = %+v", s)
	}

	crossRack := Placement{Entries: []PlacementEntry{
		{Machine: ms[0], Count: 1}, {Machine: ms[2], Count: 1}}}
	s = PlacementSpread(tp, &crossRack)
	if s.Machines != 2 || s.Racks != 2 || s.Level != 2 {
		t.Errorf("cross rack spread = %+v", s)
	}

	if got := EnclosingSubtree(tp, &Placement{}); got != topology.None {
		t.Errorf("empty placement subtree = %v, want None", got)
	}
}
