package core

import (
	"math"
	"testing"

	"repro/internal/stats"
	"repro/internal/topology"
)

// FuzzFailRestoreLedger drives a Manager through arbitrary interleavings
// of machine/link failures and restores, admissions, releases and repairs,
// and checks the ledger invariants after every step:
//
//   - slot accounting is exact: used slots per machine equal the VM counts
//     of the tracked placements, and never exceed capacity;
//   - while no job is running degraded, every live link's occupancy
//     satisfies the admission condition O_L < 1;
//   - after releasing every job and restoring every fault, the ledger is
//     exactly empty (no leaked reservations or slots).
func FuzzFailRestoreLedger(f *testing.F) {
	f.Add([]byte{0x04, 0x00, 0x00, 0x01, 0x14, 0x00})
	f.Add([]byte{0x04, 0x03, 0x04, 0x13, 0x00, 0x00, 0x06, 0x00, 0x05, 0x00})
	f.Add([]byte{0x04, 0x07, 0x02, 0x01, 0x04, 0x0b, 0x00, 0x05, 0x06, 0x01, 0x01, 0x01})
	f.Add([]byte{0x24, 0x31, 0x12, 0x43, 0x54, 0x65, 0x16, 0x07, 0x28, 0x39})

	f.Fuzz(func(t *testing.T, ops []byte) {
		m, err := NewManager(mustTopo(smallThreeTier()), 0.05)
		if err != nil {
			t.Fatal(err)
		}
		tp := m.Topology()
		machines := tp.Machines()
		links := tp.Links()
		var live []*Allocation

		checkInvariants := func(step int) {
			t.Helper()
			led := m.Ledger()
			// Slot accounting: per-machine usage must match the tracked
			// placements exactly (evicted jobs are pruned from live first).
			want := make(map[topology.NodeID]int)
			for _, a := range live {
				for _, e := range a.Placement.Entries {
					want[e.Machine] += e.Count
				}
			}
			for _, mc := range machines {
				if led.used[mc] != want[mc] {
					t.Fatalf("step %d: machine %d used %d slots, placements say %d", step, mc, led.used[mc], want[mc])
				}
				if led.used[mc] > tp.Node(mc).Slots {
					t.Fatalf("step %d: machine %d used %d slots of %d", step, mc, led.used[mc], tp.Node(mc).Slots)
				}
			}
			// Admission condition on live links while nothing is degraded.
			if m.FailureStats().DegradedJobs == 0 {
				for _, link := range links {
					if led.LinkLive(link) {
						if occ := led.Occupancy(link); occ >= 1+1e-9 {
							t.Fatalf("step %d: live link %d occupancy %v >= 1 with no degraded jobs", step, link, occ)
						}
					}
				}
			}
		}

		pruneEvicted := func() {
			kept := live[:0]
			for _, a := range live {
				if _, err := m.EffectiveEps(a.ID); err == nil {
					kept = append(kept, a)
				}
			}
			live = kept
		}

		for i := 0; i+1 < len(ops); i += 2 {
			op, arg := ops[i]%7, int(ops[i+1])
			switch op {
			case 0:
				m.FailMachine(machines[arg%len(machines)])
			case 1:
				m.RestoreMachine(machines[arg%len(machines)])
			case 2:
				m.FailLink(links[arg%len(links)])
			case 3:
				m.RestoreLink(links[arg%len(links)])
			case 4:
				req := Homogeneous{N: 1 + arg%4, Demand: stats.Normal{Mu: 4 + float64(arg%5), Sigma: float64(arg % 3)}}
				if a, err := m.AllocateHomog(req); err == nil {
					live = append(live, a)
				}
			case 5:
				if len(live) > 0 {
					idx := arg % len(live)
					if err := m.Release(live[idx].ID); err != nil {
						t.Fatalf("step %d: Release: %v", i, err)
					}
					live = append(live[:idx], live[idx+1:]...)
				}
			case 6:
				m.RepairAll()
				pruneEvicted()
			}
			checkInvariants(i)
		}

		// Drain: restore everything, release every surviving job, and the
		// ledger must be exactly empty.
		for _, mc := range machines {
			m.RestoreMachine(mc)
		}
		for _, link := range links {
			m.RestoreLink(link)
		}
		pruneEvicted()
		for _, a := range live {
			if err := m.Release(a.ID); err != nil {
				t.Fatalf("drain: Release(%d): %v", a.ID, err)
			}
		}
		led := m.Ledger()
		if got, want := led.TotalFreeSlots(), tp.TotalSlots(); got != want {
			t.Fatalf("drain: %d free slots, want %d", got, want)
		}
		for _, link := range links {
			if occ := led.Occupancy(link); math.Abs(occ) > 1e-6 {
				t.Fatalf("drain: link %d occupancy %v != 0", link, occ)
			}
			if n := led.StochasticCount(link); n != 0 {
				t.Fatalf("drain: link %d still carries %d stochastic demands", link, n)
			}
			if d := led.DetReserved(link); math.Abs(d) > 1e-6 {
				t.Fatalf("drain: link %d still reserves %v deterministic", link, d)
			}
		}
		if m.Running() != 0 {
			t.Fatalf("drain: %d jobs still tracked", m.Running())
		}
		if st := m.FailureStats(); st.MachinesDown != 0 || st.LinksDown != 0 || st.DegradedJobs != 0 {
			t.Fatalf("drain: stats not clean: %+v", st)
		}
	})
}
