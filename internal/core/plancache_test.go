package core

import (
	"errors"
	"math"
	"reflect"
	"testing"

	"repro/internal/stats"
)

// TestPlanCacheEquivalenceHomog fuzzes the memoized homogeneous DP
// against the cold one: across random topologies and random
// commit/rollback/background-demand/fault/slot interleavings, every
// cached plan must be bit-identical to a fresh DP run on the same
// ledger state — same feasibility, same placement entries, same link
// contributions.
func TestPlanCacheEquivalenceHomog(t *testing.T) {
	r := stats.NewRand(4242)
	hits := 0
	for trial := 0; trial < 40; trial++ {
		tp := randomTopology(r)
		led, err := NewLedger(tp, 0.05)
		if err != nil {
			t.Fatalf("trial %d: NewLedger: %v", trial, err)
		}
		cache := newPlanCache()
		// A small demand pool keyed repeatedly, so most plans hit warm
		// entries and exercise the incremental recompute path.
		demands := make([]stats.Normal, 3)
		for i := range demands {
			demands[i] = stats.Normal{Mu: r.UniformRange(1, 12), Sigma: r.UniformRange(0, 5)}
		}
		type liveJob struct {
			p        Placement
			contribs []linkDemand
		}
		var jobs []liveJob
		for step := 0; step < 40; step++ {
			policy := MinMaxOccupancy
			if step%5 == 4 {
				policy = FirstFeasible
			}
			req := Homogeneous{
				N:      r.UniformInt(1, min(6, tp.TotalSlots())),
				Demand: demands[r.IntN(len(demands))],
			}
			p, contribs, err := cache.allocateHomog(led, req, policy, nil)
			fp, fcontribs, ferr := AllocateHomogWorkers(led, req, policy, 1)
			if (err == nil) != (ferr == nil) {
				t.Fatalf("trial %d step %d: cached err = %v, cold err = %v", trial, step, err, ferr)
			}
			if err == nil {
				if !reflect.DeepEqual(p.Entries, fp.Entries) {
					t.Fatalf("trial %d step %d: cached placement %v != cold %v", trial, step, &p, &fp)
				}
				if !reflect.DeepEqual(contribs, fcontribs) {
					t.Fatalf("trial %d step %d: cached contribs differ from cold", trial, step)
				}
			}
			switch r.IntN(6) {
			case 0: // commit the plan: invalidates the placement's paths
				if err == nil {
					commit(led, &p, contribs)
					jobs = append(jobs, liveJob{p, contribs})
				}
			case 1: // roll a previous commit back
				if len(jobs) > 0 {
					idx := r.IntN(len(jobs))
					j := jobs[idx]
					rollback(led, &j.p, j.contribs)
					jobs = append(jobs[:idx], jobs[idx+1:]...)
				}
			case 2: // background deterministic demand on a random link
				links := tp.Links()
				link := links[r.IntN(len(links))]
				led.AddDet(link, r.UniformRange(0, 0.3*tp.LinkCap(link)))
			case 3: // fault churn: epoch bump must drop the whole table
				machines := tp.Machines()
				m := machines[r.IntN(len(machines))]
				led.Faults().FailMachine(m)
				if r.Float64() < 0.7 {
					led.Faults().RestoreMachine(m)
				}
			case 4: // raw slot churn on a random machine
				machines := tp.Machines()
				m := machines[r.IntN(len(machines))]
				if led.FreeSlots(m) > 0 {
					led.UseSlots(m, 1)
				}
			default:
				// No mutation: the next plan for this shape is a pure hit.
			}
		}
		st := cache.snapshot()
		hits += int(st.Hits)
		if st.Hits+st.Misses == 0 {
			t.Fatalf("trial %d: no plans counted", trial)
		}
	}
	if hits == 0 {
		t.Fatal("the interleavings never produced a cache hit; the test is not exercising reuse")
	}
}

// TestPlanCacheEquivalenceHetero is the heterogeneous-substring twin of
// the homogeneous equivalence fuzz.
func TestPlanCacheEquivalenceHetero(t *testing.T) {
	r := stats.NewRand(5353)
	hits := 0
	for trial := 0; trial < 30; trial++ {
		tp := randomTopology(r)
		led, err := NewLedger(tp, 0.05)
		if err != nil {
			t.Fatalf("trial %d: NewLedger: %v", trial, err)
		}
		cache := newPlanCache()
		// A fixed request pool: repeats share percentile-sorted tables.
		reqs := make([]Heterogeneous, 3)
		for i := range reqs {
			reqs[i] = randHetero(r, r.UniformInt(1, min(5, tp.TotalSlots())), 1, 10)
		}
		type liveJob struct {
			p        Placement
			contribs []linkDemand
		}
		var jobs []liveJob
		for step := 0; step < 30; step++ {
			policy := MinMaxOccupancy
			if step%5 == 4 {
				policy = FirstFeasible
			}
			req := reqs[r.IntN(len(reqs))]
			p, contribs, err := cache.allocateHeteroSubstring(led, req, policy, nil)
			fp, fcontribs, ferr := AllocateHeteroSubstringWorkers(led, req, policy, 1)
			if (err == nil) != (ferr == nil) {
				t.Fatalf("trial %d step %d: cached err = %v, cold err = %v", trial, step, err, ferr)
			}
			if err == nil {
				if !reflect.DeepEqual(p.Entries, fp.Entries) {
					t.Fatalf("trial %d step %d: cached placement %v != cold %v", trial, step, &p, &fp)
				}
				if !reflect.DeepEqual(contribs, fcontribs) {
					t.Fatalf("trial %d step %d: cached contribs differ from cold", trial, step)
				}
			}
			switch r.IntN(5) {
			case 0:
				if err == nil {
					commit(led, &p, contribs)
					jobs = append(jobs, liveJob{p, contribs})
				}
			case 1:
				if len(jobs) > 0 {
					idx := r.IntN(len(jobs))
					j := jobs[idx]
					rollback(led, &j.p, j.contribs)
					jobs = append(jobs[:idx], jobs[idx+1:]...)
				}
			case 2:
				links := tp.Links()
				link := links[r.IntN(len(links))]
				led.AddStochastic(link, stats.Normal{Mu: r.UniformRange(0, 6), Sigma: r.UniformRange(0, 3)})
			case 3:
				machines := tp.Machines()
				m := machines[r.IntN(len(machines))]
				led.Faults().FailMachine(m)
				if r.Float64() < 0.7 {
					led.Faults().RestoreMachine(m)
				}
			default:
			}
		}
		hits += int(cache.snapshot().Hits)
	}
	if hits == 0 {
		t.Fatal("the interleavings never produced a cache hit")
	}
}

// TestPlanCacheCounters pins the counter semantics: first plan of a
// shape is a miss, an unchanged replan is a hit with no invalidations,
// a commit makes the next hit recompute (invalidations move), and
// overflowing the FIFO bound evicts.
func TestPlanCacheCounters(t *testing.T) {
	led, err := NewLedger(mustTopo(smallThreeTier()), 0.05)
	if err != nil {
		t.Fatalf("NewLedger: %v", err)
	}
	c := newPlanCache()
	req := Homogeneous{N: 2, Demand: stats.Normal{Mu: 5, Sigma: 2}}

	p1, contribs, err := c.allocateHomog(led, req, MinMaxOccupancy, nil)
	if err != nil {
		t.Fatalf("first plan: %v", err)
	}
	if st := c.snapshot(); st.Misses != 1 || st.Hits != 0 {
		t.Fatalf("after first plan: %+v, want 1 miss 0 hits", st)
	}

	p2, _, err := c.allocateHomog(led, req, MinMaxOccupancy, nil)
	if err != nil {
		t.Fatalf("replan: %v", err)
	}
	if !reflect.DeepEqual(p1.Entries, p2.Entries) {
		t.Fatalf("unchanged replan differs: %v vs %v", &p1, &p2)
	}
	if st := c.snapshot(); st.Hits != 1 || st.Invalidations != 0 {
		t.Fatalf("after unchanged replan: %+v, want 1 hit 0 invalidations", st)
	}

	commit(led, &p1, contribs)
	if _, _, err := c.allocateHomog(led, req, MinMaxOccupancy, nil); err != nil {
		t.Fatalf("post-commit plan: %v", err)
	}
	st := c.snapshot()
	if st.Hits != 2 || st.Invalidations == 0 {
		t.Fatalf("after post-commit replan: %+v, want 2 hits and >0 invalidations", st)
	}
	// The commit touched two machines' root paths at most; with 4
	// machines + 2 racks + 1 root, an incremental replan must recompute
	// strictly fewer records than the 7-vertex full fill.
	if st.Invalidations >= int64(led.Topology().Len()) {
		t.Fatalf("post-commit replan recomputed %d records, want < %d (incremental)",
			st.Invalidations, led.Topology().Len())
	}

	for i := 0; i <= maxHomogPlanEntries; i++ {
		r := Homogeneous{N: 1, Demand: stats.Normal{Mu: 1 + float64(i), Sigma: 1}}
		if _, _, err := c.allocateHomog(led, r, MinMaxOccupancy, nil); err != nil {
			t.Fatalf("fill plan %d: %v", i, err)
		}
	}
	if st := c.snapshot(); st.Evictions == 0 {
		t.Fatalf("after overflowing the homog FIFO: %+v, want evictions", st)
	}

	for i := 0; i <= maxHeteroPlanEntries; i++ {
		r := Heterogeneous{Demands: []stats.Normal{{Mu: 1 + float64(i), Sigma: 1}}}
		if _, _, err := c.allocateHeteroSubstring(led, r, MinMaxOccupancy, nil); err != nil {
			t.Fatalf("hetero fill plan %d: %v", i, err)
		}
	}
	if st := c.snapshot(); st.Evictions < 2 {
		t.Fatalf("after overflowing both FIFOs: %+v, want >= 2 evictions", st)
	}
}

// TestCanonDemand pins the memo-key canonicalization: negative moments
// clamp to zero (matching the contribution-time clamp of the
// moment-matched hetero min path) and NaNs collapse to the zero demand,
// so equal effective demands always share cache entries.
func TestCanonDemand(t *testing.T) {
	cases := []struct{ in, want stats.Normal }{
		{stats.Normal{Mu: 5, Sigma: 2}, stats.Normal{Mu: 5, Sigma: 2}},
		{stats.Normal{Mu: -3, Sigma: 2}, stats.Normal{Mu: 0, Sigma: 2}},
		{stats.Normal{Mu: 4, Sigma: -1}, stats.Normal{Mu: 4, Sigma: 0}},
		{stats.Normal{Mu: math.NaN(), Sigma: 2}, stats.Normal{}},
		{stats.Normal{Mu: 1, Sigma: math.NaN()}, stats.Normal{}},
	}
	for _, tc := range cases {
		if got := canonDemand(tc.in); got != tc.want {
			t.Errorf("canonDemand(%v) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

// fakeBatchJournal extends fakeJournal with the staged and batch seams,
// recording every group size it staged.
type fakeBatchJournal struct {
	fakeJournal
	batchSizes []int
}

func (f *fakeBatchJournal) StageCommit(mut Mutation) (func() error, error) {
	if err := f.Commit(mut); err != nil {
		return nil, err
	}
	return func() error { return nil }, nil
}

func (f *fakeBatchJournal) StageCommitBatch(muts []Mutation) (func() error, error) {
	if f.vetoErr != nil {
		return nil, f.vetoErr
	}
	f.batchSizes = append(f.batchSizes, len(muts))
	f.muts = append(f.muts, muts...)
	return func() error { return nil }, nil
}

// TestAllocateBatchDifferential replays one request sequence through
// batched admission and through the serialized locked baseline: per-op
// outcomes, journal mutation streams, exported states, and a journal
// replay must all be identical — batching is a throughput optimization,
// never a semantic change.
func TestAllocateBatchDifferential(t *testing.T) {
	r := stats.NewRand(9191)
	mb := mustManager(t, mediumThreeTier(), 0.05)
	jb := &fakeBatchJournal{}
	mb.SetJournal(jb)
	ms := mustManager(t, mediumThreeTier(), 0.05, WithLockedAdmission())
	js := &fakeJournal{}
	ms.SetJournal(js)

	var live []JobID
	for round := 0; round < 12; round++ {
		reqs := make([]BatchRequest, 4)
		for k := range reqs {
			if (round+k)%2 == 0 {
				req, err := NewHomogeneous(1+r.IntN(3), stats.Normal{
					Mu: r.UniformRange(2, 8), Sigma: r.UniformRange(0.5, 2)})
				if err != nil {
					t.Fatalf("round %d: %v", round, err)
				}
				reqs[k] = BatchRequest{Homog: &req}
			} else {
				req := randHetero(r, 1+r.IntN(3), 2, 8)
				reqs[k] = BatchRequest{Hetero: &req}
			}
		}
		res := mb.AllocateBatch(reqs)
		var admitted []JobID
		for i, req := range reqs {
			var (
				sa   *Allocation
				serr error
			)
			if req.Homog != nil {
				sa, serr = ms.AllocateHomog(*req.Homog)
			} else {
				sa, serr = ms.AllocateHetero(*req.Hetero)
			}
			if (res[i].Err == nil) != (serr == nil) {
				t.Fatalf("round %d item %d: batch err = %v, serial err = %v", round, i, res[i].Err, serr)
			}
			if res[i].Err != nil {
				if !errors.Is(res[i].Err, ErrNoCapacity) {
					t.Fatalf("round %d item %d: %v", round, i, res[i].Err)
				}
				continue
			}
			if res[i].Alloc.ID != sa.ID {
				t.Fatalf("round %d item %d: batch job %d, serial job %d", round, i, res[i].Alloc.ID, sa.ID)
			}
			if !reflect.DeepEqual(res[i].Alloc.Placement.Entries, sa.Placement.Entries) {
				t.Fatalf("round %d item %d: batch placement %v != serial %v",
					round, i, &res[i].Alloc.Placement, &sa.Placement)
			}
			admitted = append(admitted, sa.ID)
		}
		// Keep load bounded: release everything but this round's first
		// admission, on both managers, so the sequence stays identical.
		for i, id := range admitted {
			if i == 0 {
				live = append(live, id)
				continue
			}
			if err := mb.Release(id); err != nil {
				t.Fatalf("round %d: batch Release(%d): %v", round, id, err)
			}
			if err := ms.Release(id); err != nil {
				t.Fatalf("round %d: serial Release(%d): %v", round, id, err)
			}
		}
	}

	// A request larger than the datacenter rejects on both sides without
	// consuming a job ID.
	big, err := NewHomogeneous(mb.Topology().TotalSlots()+1, stats.Normal{Mu: 1, Sigma: 0})
	if err != nil {
		t.Fatalf("big request: %v", err)
	}
	res := mb.AllocateBatch([]BatchRequest{{Homog: &big}, {Homog: &big}})
	for i, br := range res {
		if !errors.Is(br.Err, ErrNoCapacity) {
			t.Fatalf("oversized batch item %d: err = %v, want ErrNoCapacity", i, br.Err)
		}
	}
	for i := 0; i < 2; i++ {
		if _, err := ms.AllocateHomog(big); !errors.Is(err, ErrNoCapacity) {
			t.Fatalf("oversized serial item %d: err = %v, want ErrNoCapacity", i, err)
		}
	}

	if !reflect.DeepEqual(jb.muts, js.muts) {
		t.Fatalf("journal streams diverge:\nbatch:  %d records\nserial: %d records", len(jb.muts), len(js.muts))
	}
	if got, want := mb.ExportState(), ms.ExportState(); !reflect.DeepEqual(got, want) {
		t.Fatalf("batched state differs from serialized baseline:\n got %+v\nwant %+v", got, want)
	}

	// The batch journal stream must also replay into the same state.
	m3 := mustManager(t, mediumThreeTier(), 0.05)
	for i, mut := range jb.muts {
		if err := m3.Replay(mut); err != nil {
			t.Fatalf("Replay(record %d, op %v): %v", i, mut.Op, err)
		}
	}
	if got, want := m3.ExportState(), mb.ExportState(); !reflect.DeepEqual(got, want) {
		t.Fatalf("replayed state differs from batched manager")
	}

	// The BatchJournal seam was actually used, with real multi-item
	// groups, and every batch admission was counted as revalidated.
	maxBatch := 0
	for _, n := range jb.batchSizes {
		if n > maxBatch {
			maxBatch = n
		}
	}
	if maxBatch < 2 {
		t.Fatalf("batch sizes %v: want at least one multi-item staged group", jb.batchSizes)
	}
	adm := mb.AdmissionStats()
	if adm.Batch.Count == 0 || adm.Batch.Max < 2 {
		t.Fatalf("batch summary %+v: want counted batches with size >= 2", adm.Batch)
	}
	if adm.PlanCacheHits == 0 {
		t.Fatalf("admission stats %+v: want plan-cache hits from repeated shapes", adm)
	}
}

// TestBatcherCoalesces pre-loads a Batcher's queue and runs one drain:
// the backlog must be planned as maxBatch-sized groups, every caller
// must get its own result, and the admission summary must record the
// groups.
func TestBatcherCoalesces(t *testing.T) {
	m := mustManager(t, mediumThreeTier(), 0.05)
	b := NewBatcher(m, 8)
	const callers = 24
	req, err := NewHomogeneous(1, stats.Normal{Mu: 2, Sigma: 0.5})
	if err != nil {
		t.Fatalf("NewHomogeneous: %v", err)
	}
	// Stuff the queue before the drain starts, exactly the backlog shape
	// a burst leaves behind while a previous drain holds the lock.
	done := make([]chan BatchResult, callers)
	b.mu.Lock()
	for g := range done {
		done[g] = make(chan BatchResult, 1)
		b.queue = append(b.queue, batchCall{req: BatchRequest{Homog: &req}, done: done[g]})
	}
	b.draining = true
	b.mu.Unlock()
	go b.drain()

	seen := map[JobID]bool{}
	for g := range done {
		res := <-done[g]
		if res.Err != nil {
			t.Fatalf("caller %d: %v", g, res.Err)
		}
		if seen[res.Alloc.ID] {
			t.Fatalf("caller %d: job %d delivered twice", g, res.Alloc.ID)
		}
		seen[res.Alloc.ID] = true
	}
	adm := m.AdmissionStats()
	if adm.Batch.Count != callers/8 || adm.Batch.Max != 8 {
		t.Fatalf("batch summary %+v: want %d batches of 8", adm.Batch, callers/8)
	}
	if adm.Revalidated != callers {
		t.Fatalf("revalidated = %d, want %d (every batch admission counts there)", adm.Revalidated, callers)
	}

	// The public path still works end to end for a lone caller.
	if _, err := b.Allocate(BatchRequest{Homog: &req}); err != nil {
		t.Fatalf("Allocate: %v", err)
	}
}
