package core

import (
	"testing"

	"repro/internal/stats"
	"repro/internal/topology"
)

// TestRepairGuaranteeMonteCarlo is the acceptance check for the repair
// path: a seeded scenario fails more than 5% of the datacenter's machines,
// every affected job is repaired, and the probabilistic bandwidth
// guarantee is then re-measured the same way TestProbabilisticGuarantee-
// MonteCarlo measures it — per-VM demands are drawn from the jobs' demand
// distributions and the realized crossing traffic on every live link is
// compared against its capacity. The empirical violation frequency must
// stay within eps (plus a Monte Carlo margin) for every link, because no
// job was degraded.
func TestRepairGuaranteeMonteCarlo(t *testing.T) {
	const (
		eps     = 0.10
		samples = 20000
		jobSize = 8
	)
	// 2 racks x 8 machines x 4 slots. Host links are sized so one job's
	// crossing demand is a meaningful fraction of capacity (the guarantee
	// is exercised, not trivially slack).
	rack := func() topology.Spec {
		s := topology.Spec{UpCap: 2400}
		for i := 0; i < 8; i++ {
			s.Children = append(s.Children, topology.Spec{UpCap: 600, Slots: 4})
		}
		return s
	}
	m, err := NewManager(mustTopo(topology.Spec{Children: []topology.Spec{rack(), rack()}}), eps)
	if err != nil {
		t.Fatal(err)
	}
	tp := m.Topology()
	profile := stats.Normal{Mu: 60, Sigma: 30}
	req := Homogeneous{N: jobSize, Demand: profile}

	// Fill the datacenter, then release the last two jobs so repair has
	// headroom to move displaced VMs into.
	var jobs []*Allocation
	for {
		a, err := m.AllocateHomog(req)
		if err != nil {
			break
		}
		jobs = append(jobs, a)
	}
	if len(jobs) < 4 {
		t.Fatalf("admitted only %d jobs; scenario needs a loaded datacenter", len(jobs))
	}
	for _, a := range jobs[len(jobs)-2:] {
		if err := m.Release(a.ID); err != nil {
			t.Fatal(err)
		}
	}
	jobs = jobs[:len(jobs)-2]

	// Fail one machine of each of the first two jobs: 2 of 16 machines is
	// 12.5% > the 5% floor the acceptance criterion requires.
	r := stats.NewRand(20140708)
	failed := map[topology.NodeID]bool{}
	for _, a := range jobs[:2] {
		victim := a.Placement.Entries[r.UniformInt(0, len(a.Placement.Entries)-1)].Machine
		if failed[victim] {
			victim = a.Placement.Entries[0].Machine
		}
		failed[victim] = true
		m.FailMachine(victim)
	}
	if got, want := len(failed), 2; got != want {
		t.Fatalf("failed %d distinct machines, want %d", got, want)
	}
	if frac := float64(len(failed)) / float64(len(tp.Machines())); frac < 0.05 {
		t.Fatalf("failed fraction %.3f < 0.05", frac)
	}

	// Repair every affected job; with headroom available, every repair
	// must preserve the original guarantee (no degradation, no eviction).
	results, _ := m.RepairAll()
	if len(results) == 0 {
		t.Fatal("failures displaced no job; scenario is vacuous")
	}
	for _, res := range results {
		if res.Outcome != RepairMoved {
			t.Fatalf("job %d repair outcome %v, want moved", res.Job, res.Outcome)
		}
		if res.EffectiveEps != eps {
			t.Fatalf("job %d effective eps %v, want original %v", res.Job, res.EffectiveEps, eps)
		}
	}
	for _, a := range jobs {
		if got, err := m.EffectiveEps(a.ID); err != nil || got != eps {
			t.Fatalf("job %d effective eps %v, %v; want original %v", a.ID, got, err, eps)
		}
		for _, e := range a.Placement.Entries {
			if failed[e.Machine] {
				t.Fatalf("job %d still has VMs on failed machine %d", a.ID, e.Machine)
			}
		}
	}
	if st := m.FailureStats(); st.DegradedJobs != 0 || st.FailedRepairs != 0 {
		t.Fatalf("unexpected degradation after repair: %+v", st)
	}

	// Monte Carlo re-measurement of the guarantee over the repaired state.
	// For each link, each job contributes min(inside, outside) of its
	// realized per-VM demands — the crossing traffic the SVC model bounds.
	led := m.Ledger()
	type crossing struct{ inside int }
	perLink := make(map[topology.LinkID]map[int]crossing) // link -> job index -> split
	for ji, a := range jobs {
		for link, inside := range vmsInsideLink(tp, &a.Placement) {
			if inside == 0 || inside == jobSize {
				continue
			}
			if perLink[link] == nil {
				perLink[link] = make(map[int]crossing)
			}
			perLink[link][ji] = crossing{inside: inside}
		}
	}
	if len(perLink) == 0 {
		t.Fatal("no link carries crossing demand; scenario is vacuous")
	}
	violations := make(map[topology.LinkID]int)
	draws := make([][]float64, len(jobs))
	prefix := make([][]float64, len(jobs))
	for i := range draws {
		draws[i] = make([]float64, jobSize)
		prefix[i] = make([]float64, jobSize+1)
	}
	for s := 0; s < samples; s++ {
		for ji := range jobs {
			for v := 0; v < jobSize; v++ {
				draws[ji][v] = r.Normal(profile)
			}
			for v := 0; v < jobSize; v++ {
				prefix[ji][v+1] = prefix[ji][v] + draws[ji][v]
			}
		}
		for link, xs := range perLink {
			total := led.DetReserved(link)
			for ji, c := range xs {
				inside := prefix[ji][c.inside]
				outside := prefix[ji][jobSize] - inside
				if outside < inside {
					inside = outside
				}
				if inside > 0 {
					total += inside
				}
			}
			if total > tp.LinkCap(link) {
				violations[link]++
			}
		}
	}
	for link, bad := range violations {
		if got := float64(bad) / samples; got > eps+0.03 {
			t.Errorf("link %d: empirical violation %.4f exceeds eps %.2f after repair", link, got, eps)
		}
	}
	t.Logf("repaired %d jobs after failing %d/%d machines; %d links carry crossing demand",
		len(results), len(failed), len(tp.Machines()), len(perLink))
}
