package core

import "time"

// nowFunc is the controller's only clock. Latency measurements
// (admission planning, repair) read it instead of calling time.Now
// directly so tests can inject a deterministic clock and so the
// determinism analyzer can hold the rest of the package to a
// no-wall-clock rule: journaled state must never depend on when a
// mutation ran, only on its order in the log.
var nowFunc = time.Now

// now reads the injected clock.
func now() time.Time { return nowFunc() }

// since measures elapsed time against the injected clock (time.Since
// would consult the wall clock regardless of nowFunc).
func since(t0 time.Time) time.Duration { return nowFunc().Sub(t0) }

// SetClockForTesting swaps the clock seam and returns a restore
// function. Tests use it to fake latency without sleeping.
func SetClockForTesting(f func() time.Time) (restore func()) {
	prev := nowFunc
	nowFunc = f
	return func() { nowFunc = prev }
}
