package core

import (
	"fmt"
	"math"
	"math/bits"
	"sort"

	"repro/internal/stats"
	"repro/internal/topology"
)

// MaxExactHeteroVMs bounds the exact heterogeneous allocator: beyond this
// the O(2^N) allocable VM sets make it infeasible (paper Section V-B), and
// AllocateHeteroExact returns an error directing callers to the heuristic.
const MaxExactHeteroVMs = 14

// orderByPercentile returns the request's VM indices sorted ascending by
// the 95th percentile of their demand, the ordering the paper prescribes
// for the substring heuristic and first fit, together with the demands in
// that order.
func orderByPercentile(req Heterogeneous) (order []int, sorted []stats.Normal) {
	order = make([]int, req.N())
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return req.Demands[order[a]].Quantile(Percentile95) < req.Demands[order[b]].Quantile(Percentile95)
	})
	sorted = make([]stats.Normal, len(order))
	for pos, idx := range order {
		sorted[pos] = req.Demands[idx]
	}
	return order, sorted
}

// substrRecord is the per-vertex state of the substring heuristic (paper
// Section V-B): the allocable VM set restricted to contiguous substrings
// [a, b) of the percentile-sorted VM sequence, indexed by (length, a).
// All slices are arena-backed and only valid for one allocation call.
type substrRecord struct {
	maxLen int
	n      int
	optIn  []float64 // min over placements of max in-subtree occupancy
	upOcc  []float64 // uplink occupancy per substring (non-root only)
	alloc  []bool
	choice [][]int32 // choice[i][idx]: split point k — child i received [k, b)
}

func (r *substrRecord) idx(length, a int) int { return length*(r.n+1) + a }

// AllocateHeteroSubstring runs the paper's polynomial-time heterogeneous
// heuristic: VMs are sorted by 95th-percentile demand and allocable VM sets
// are restricted to contiguous substrings of the sorted sequence, searched
// bottom-up with the same lowest-subtree, min-max-occupancy dynamic program
// as the homogeneous algorithm. It returns the placement and contributions
// without committing them.
func AllocateHeteroSubstring(led *Ledger, req Heterogeneous, policy Policy) (Placement, []linkDemand, error) {
	return AllocateHeteroSubstringWorkers(led, req, policy, 0)
}

// AllocateHeteroSubstringWorkers is AllocateHeteroSubstring with explicit
// control over DP parallelism, with the same semantics as
// AllocateHomogWorkers: 1 forces sequential, > 1 forces that many level
// workers, <= 0 picks automatically. Both paths produce bit-identical
// placements.
func AllocateHeteroSubstringWorkers(led *Ledger, req Heterogeneous, policy Policy, workers int) (Placement, []linkDemand, error) {
	return allocateHeteroSubstringScoped(led, req, policy, workers, nil)
}

// allocateHeteroSubstringScoped is the scope-aware driver behind
// AllocateHeteroSubstringWorkers; see allocateHomogScoped.
func allocateHeteroSubstringScoped(led *Ledger, req Heterogeneous, policy Policy, workers int, scope *planScope) (Placement, []linkDemand, error) {
	if err := req.Validate(); err != nil {
		return Placement{}, nil, err
	}
	topo := led.Topology()
	order, sorted := orderByPercentile(req)
	prefix := newDemandPrefix(sorted)
	n := req.N()

	w := resolveWorkers(workers, topo.Len(), n)
	scr := getSubstrScratch(w, topo.Len())
	defer putSubstrScratch(scr)
	records := scr.records

	for level := 0; level <= scopeHeight(topo, scope); level++ {
		verts := scopeAtLevel(topo, scope, level)
		forEachVertex(verts, w, func(slot int, v topology.NodeID) {
			substrCompute(led, topo, v, n, prefix, records, policy, scr.arenas[slot])
		})
		var (
			best    topology.NodeID = topology.None
			bestVal                 = infeasible
		)
		for _, v := range verts {
			rec := &records[v]
			if rec.maxLen < n {
				continue
			}
			full := rec.idx(n, 0)
			if rec.optIn[full] == infeasible {
				continue
			}
			val := rec.optIn[full]
			if policy == FirstFeasible && best != topology.None {
				continue
			}
			if val < bestVal || best == topology.None {
				best, bestVal = v, val
			}
		}
		if best != topology.None {
			var p Placement
			substrBuild(topo, records, order, best, 0, n, &p)
			p.normalize()
			return p, heteroContributions(topo, req, &p), nil
		}
	}
	return Placement{}, nil, fmt.Errorf("%w: %v", ErrNoCapacity, req)
}

// substrCompute fills the substring DP record for vertex v. Like
// homogCompute it only reads the ledger and the children's finalized
// records, so one level's vertices can run concurrently.
func substrCompute(led *Ledger, topo *topology.Topology, v topology.NodeID, n int,
	prefix *demandPrefix, records []substrRecord, policy Policy, ar *arena) {

	node := topo.Node(v)
	rec := &records[v]
	*rec = substrRecord{n: n}
	if node.IsMachine() {
		rec.maxLen = min(n, led.FreeSlots(v))
		rec.optIn = ar.f64.alloc((rec.maxLen + 1) * (n + 1))
		// A machine can hold any substring short enough to fit its free
		// slots; VMs sharing a machine use no links.
	} else {
		capV := 0
		for _, c := range node.Children {
			capV += records[c].maxLen
		}
		rec.maxLen = min(n, capV)
		size := (rec.maxLen + 1) * (n + 1)
		acc := ar.f64.alloc(size)
		next := ar.f64.alloc(size)
		for i := range acc {
			acc[i] = infeasible
		}
		for a := 0; a <= n; a++ {
			acc[rec.idx(0, a)] = 0 // empty substring anchored anywhere
		}
		rec.choice = ar.s32.alloc(len(node.Children))
		reach := 0
		for i, c := range node.Children {
			child := &records[c]
			pick := ar.i32.alloc(size)
			for j := range next {
				next[j] = infeasible
				pick[j] = -1
			}
			for aLen := 0; aLen <= reach; aLen++ {
				for a := 0; a+aLen <= n; a++ {
					cur := acc[rec.idx(aLen, a)]
					if cur == infeasible {
						continue
					}
					k := a + aLen // child i continues the substring at k
					maxChildLen := min(child.maxLen, min(rec.maxLen-aLen, n-k))
					for cl := 0; cl <= maxChildLen; cl++ {
						cIdx := child.idx(cl, k)
						if !child.alloc[cIdx] {
							continue
						}
						tIdx := rec.idx(aLen+cl, a)
						val := 0.0
						if policy == MinMaxOccupancy {
							val = math.Max(cur, math.Max(child.optIn[cIdx], child.upOcc[cIdx]))
						} else if next[tIdx] != infeasible {
							continue
						}
						if val < next[tIdx] {
							next[tIdx] = val
							pick[tIdx] = int32(k)
						}
					}
				}
			}
			acc, next = next, acc
			rec.choice[i] = pick
			reach = min(rec.maxLen, reach+child.maxLen)
		}
		rec.optIn = acc
	}

	rec.alloc = ar.bl.alloc(len(rec.optIn))
	isRoot := node.Parent == topology.None
	if !isRoot {
		rec.upOcc = ar.f64.alloc(len(rec.optIn))
	}
	for length := 0; length <= rec.maxLen; length++ {
		for a := 0; a+length <= n; a++ {
			i := rec.idx(length, a)
			if rec.optIn[i] == infeasible {
				continue
			}
			if isRoot {
				rec.alloc[i] = true
				continue
			}
			rec.upOcc[i] = led.OccupancyWith(v, prefix.crossing(a, a+length))
			rec.alloc[i] = rec.upOcc[i] < 1
		}
	}
}

// substrBuild reconstructs the substring assignment [a, b) at vertex v.
func substrBuild(topo *topology.Topology, records []substrRecord, order []int,
	v topology.NodeID, a, b int, p *Placement) {
	if a == b {
		return
	}
	node := topo.Node(v)
	if node.IsMachine() {
		vms := make([]int, 0, b-a)
		for pos := a; pos < b; pos++ {
			vms = append(vms, order[pos])
		}
		p.Entries = append(p.Entries, PlacementEntry{Machine: v, Count: b - a, VMs: vms})
		return
	}
	rec := &records[v]
	for i := len(node.Children) - 1; i >= 0; i-- {
		k := int(rec.choice[i][rec.idx(b-a, a)])
		if k < 0 {
			panic(fmt.Sprintf("core: no recorded split for child %d of node %d over [%d,%d)", i, v, a, b))
		}
		substrBuild(topo, records, order, node.Children[i], k, b, p)
		b = k
	}
	if b != a {
		panic(fmt.Sprintf("core: reconstruction at node %d left [%d,%d) unassigned", v, a, b))
	}
}

// heteroMaskState is the exact DP's per-vertex state: for each subset of
// the request's VMs that can be placed in the subtree, the optimal max
// in-subtree occupancy and the per-child submask split.
type heteroMaskState struct {
	opt   float64
	split []uint32 // per-child submask (internal vertices only)
}

// AllocateHeteroExact runs the paper's exact (exponential) heterogeneous
// dynamic program, which maintains every allocable VM subset per subtree.
// It is only practical for small requests (N <= MaxExactHeteroVMs) and
// exists as the optimality reference for the substring heuristic.
func AllocateHeteroExact(led *Ledger, req Heterogeneous) (Placement, []linkDemand, error) {
	if err := req.Validate(); err != nil {
		return Placement{}, nil, err
	}
	n := req.N()
	if n > MaxExactHeteroVMs {
		return Placement{}, nil, fmt.Errorf("%w: exact allocator supports at most %d VMs, got %d",
			ErrBadRequest, MaxExactHeteroVMs, n)
	}
	topo := led.Topology()

	// Aggregate demand of every subset, built by peeling the lowest bit.
	size := 1 << n
	aggMu := make([]float64, size)
	aggVar := make([]float64, size)
	for mask := 1; mask < size; mask++ {
		low := mask & -mask
		rest := mask ^ low
		d := req.Demands[bits.TrailingZeros32(uint32(mask))]
		aggMu[mask] = aggMu[rest] + d.Mu
		aggVar[mask] = aggVar[rest] + d.Var()
	}
	fullMask := uint32(size - 1)
	crossing := func(mask uint32) stats.Normal {
		inside := stats.Normal{Mu: aggMu[mask], Sigma: sqrtNonNeg(aggVar[mask])}
		out := fullMask &^ mask
		outside := stats.Normal{Mu: aggMu[out], Sigma: sqrtNonNeg(aggVar[out])}
		return CrossingSets(inside, outside)
	}

	records := make([]map[uint32]heteroMaskState, topo.Len())
	for level := 0; level <= topo.Height(); level++ {
		var (
			best    topology.NodeID = topology.None
			bestVal                 = infeasible
		)
		for _, v := range topo.AtLevel(level) {
			rec := heteroExactCompute(led, topo, v, n, crossing, records)
			records[v] = rec
			if st, ok := rec[fullMask]; ok {
				if st.opt < bestVal || best == topology.None {
					best, bestVal = v, st.opt
				}
			}
		}
		if best != topology.None {
			var p Placement
			heteroExactBuild(topo, records, best, fullMask, &p)
			p.normalize()
			return p, heteroContributions(topo, req, &p), nil
		}
	}
	return Placement{}, nil, fmt.Errorf("%w: %v", ErrNoCapacity, req)
}

// heteroExactCompute fills the exact-DP record for vertex v: the map from
// allocable subsets (including the uplink constraint) to their state.
func heteroExactCompute(led *Ledger, topo *topology.Topology, v topology.NodeID, n int,
	crossing func(uint32) stats.Normal, records []map[uint32]heteroMaskState) map[uint32]heteroMaskState {

	node := topo.Node(v)
	inSubtree := make(map[uint32]heteroMaskState)
	if node.IsMachine() {
		free := led.FreeSlots(v)
		for mask := uint32(0); mask < 1<<n; mask++ {
			if bits.OnesCount32(mask) <= free {
				inSubtree[mask] = heteroMaskState{}
			}
		}
	} else {
		acc := map[uint32]heteroMaskState{0: {split: nil}}
		for _, c := range node.Children {
			// The child's record is already filtered to its allocable set
			// (its uplink constraint applied); the uplink occupancy is
			// recomputed here only because it participates in the min-max
			// objective.
			child := records[c]
			childUp := make(map[uint32]float64, len(child))
			for mask, st := range child {
				childUp[mask] = math.Max(st.opt, led.OccupancyWith(c, crossing(mask)))
			}
			next := make(map[uint32]heteroMaskState)
			for accMask, accSt := range acc {
				for childMask, up := range childUp {
					if accMask&childMask != 0 {
						continue
					}
					union := accMask | childMask
					val := math.Max(accSt.opt, up)
					if cur, ok := next[union]; !ok || val < cur.opt {
						split := make([]uint32, len(accSt.split)+1)
						copy(split, accSt.split)
						split[len(accSt.split)] = childMask
						next[union] = heteroMaskState{opt: val, split: split}
					}
				}
			}
			acc = next
		}
		inSubtree = acc
	}

	// Apply this vertex's own uplink constraint to form the allocable set.
	// (The root keeps every placeable subset.)
	if node.Parent == topology.None {
		return inSubtree
	}
	allocable := make(map[uint32]heteroMaskState, len(inSubtree))
	for mask, st := range inSubtree {
		if mask == 0 || led.OccupancyWith(v, crossing(mask)) < 1 {
			allocable[mask] = st
		}
	}
	return allocable
}

// heteroExactBuild reconstructs the exact DP's placement.
func heteroExactBuild(topo *topology.Topology, records []map[uint32]heteroMaskState,
	v topology.NodeID, mask uint32, p *Placement) {
	if mask == 0 {
		return
	}
	node := topo.Node(v)
	if node.IsMachine() {
		var vms []int
		for m := mask; m != 0; m &= m - 1 {
			vms = append(vms, bits.TrailingZeros32(m))
		}
		p.Entries = append(p.Entries, PlacementEntry{Machine: v, Count: len(vms), VMs: vms})
		return
	}
	st := records[v][mask]
	for i, childMask := range st.split {
		heteroExactBuild(topo, records, node.Children[i], childMask, p)
	}
}
