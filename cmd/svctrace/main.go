// Command svctrace runs a single simulation scenario and writes its event
// trace as JSON lines, for offline inspection of what the aggregate
// experiments summarize.
//
//	svctrace -o run.jsonl                          # online SVC run at 60% load
//	svctrace -abstraction percentile-VC -load 0.8  # heavier load, det model
//	svctrace -batch -jobs 120 -o batch.jsonl       # batched scenario
//	svctrace -fail 300:12 -fail 600:40             # inject machine failures
//
// The trace contains admit/reject/complete/job_fail/machine_fail events and
// a datacenter snapshot (concurrency, max occupancy) every -snapshot
// seconds.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"repro/internal/experiments"
	"repro/internal/sim"
	"repro/internal/topology"
	"repro/internal/trace"
	"repro/internal/workload"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "svctrace:", err)
		os.Exit(1)
	}
}

type failList []sim.MachineFailure

func (f *failList) String() string { return fmt.Sprint(*f) }

func (f *failList) Set(s string) error {
	at, machine, ok := strings.Cut(s, ":")
	if !ok {
		return fmt.Errorf("failure %q: want <second>:<machine>", s)
	}
	t, err := strconv.Atoi(at)
	if err != nil {
		return fmt.Errorf("failure time %q: %w", at, err)
	}
	m, err := strconv.Atoi(machine)
	if err != nil {
		return fmt.Errorf("failure machine %q: %w", machine, err)
	}
	*f = append(*f, sim.MachineFailure{At: t, Machine: topology.NodeID(m)})
	return nil
}

func run(args []string, summary io.Writer) error {
	fs := flag.NewFlagSet("svctrace", flag.ContinueOnError)
	var failures failList
	var (
		out         = fs.String("o", "", "trace output file (default stdout)")
		scale       = fs.String("scale", "quick", "datacenter/workload scale: quick|paper")
		abstraction = fs.String("abstraction", "SVC", "SVC|mean-VC|percentile-VC")
		batch       = fs.Bool("batch", false, "batched FIFO scenario instead of online arrivals")
		load        = fs.Float64("load", 0.6, "datacenter load (online scenario)")
		jobCount    = fs.Int("jobs", 0, "override job count")
		eps         = fs.Float64("eps", 0.05, "risk factor")
		snapshot    = fs.Int("snapshot", 50, "snapshot period in simulated seconds (0 = off)")
		seed        = fs.Uint64("seed", 0, "override workload seed")
		jobsFile    = fs.String("jobs-file", "", "replay an exact job population (JSON written by -dump-jobs)")
		dumpJobs    = fs.String("dump-jobs", "", "write the generated job population to this file and continue")
	)
	analyze := fs.String("analyze", "", "analyze an existing trace file and print its summary (no simulation)")
	fs.Var(&failures, "fail", "inject a machine failure as <second>:<machineID> (repeatable)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *analyze != "" {
		f, err := os.Open(*analyze)
		if err != nil {
			return err
		}
		defer f.Close()
		events, err := trace.Read(f)
		if err != nil {
			return fmt.Errorf("read %s: %w", *analyze, err)
		}
		fmt.Fprint(summary, trace.Analyze(events))
		return nil
	}

	var sc experiments.Scale
	switch *scale {
	case "quick":
		sc = experiments.QuickScale()
	case "paper":
		sc = experiments.PaperScale()
	default:
		return fmt.Errorf("unknown scale %q", *scale)
	}
	if *jobCount > 0 {
		sc.Jobs = *jobCount
	}
	if *seed != 0 {
		sc.Seed = *seed
	}

	var abs sim.Abstraction
	switch *abstraction {
	case "SVC", "svc":
		abs = sim.SVC
	case "mean-VC", "mean-vc", "mean":
		abs = sim.MeanVC
	case "percentile-VC", "percentile-vc", "percentile":
		abs = sim.PercentileVC
	default:
		return fmt.Errorf("unknown abstraction %q", *abstraction)
	}

	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	rec := trace.NewRecorder(w, *snapshot)

	topoCfg := sc.Topo
	topo, err := topology.NewThreeTier(topoCfg)
	if err != nil {
		return err
	}
	params := workload.Paper(sc.Jobs, sc.Seed)
	params.MeanSize = sc.MeanJobSize
	params.MaxSize = sc.MaxJobSize
	params.FlowSeconds = sc.FlowSeconds
	var jobs []sim.JobSpec
	if *jobsFile != "" {
		jf, err := os.Open(*jobsFile)
		if err != nil {
			return err
		}
		jobs, err = workload.ReadJobs(jf)
		jf.Close()
		if err != nil {
			return err
		}
	} else {
		var err error
		jobs, err = workload.Generate(params)
		if err != nil {
			return err
		}
	}
	if *dumpJobs != "" {
		df, err := os.Create(*dumpJobs)
		if err != nil {
			return err
		}
		err = workload.WriteJobs(df, jobs)
		if cerr := df.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
	}

	cfg := sim.Config{
		Topo:        topo,
		Eps:         *eps,
		Abstraction: abs,
		Recorder:    rec,
		Failures:    failures,
	}
	if *batch {
		res, err := sim.RunBatch(cfg, jobs)
		if err != nil {
			return err
		}
		fmt.Fprintf(summary, "batch: %d jobs, makespan %ds, mean job time %.0fs, unplaceable %d, failed %d\n",
			len(jobs), res.Makespan, res.MeanJobTime, res.Unplaceable, res.FailedJobs)
	} else {
		lambda := params.ArrivalRate(*load, topoCfg.Slots())
		arrivals, err := workload.PoissonArrivals(len(jobs), lambda, sc.Seed+7)
		if err != nil {
			return err
		}
		res, err := sim.RunOnline(cfg, jobs, arrivals)
		if err != nil {
			return err
		}
		fmt.Fprintf(summary, "online: %d jobs at %.0f%% load, rejected %d (%.1f%%), mean concurrency %.1f, failed %d\n",
			res.Total, 100**load, res.Rejected, 100*res.RejectionRate, res.MeanConcurrency, res.FailedJobs)
	}
	return rec.Err()
}
