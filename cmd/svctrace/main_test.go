package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/trace"
)

func TestFailListParsing(t *testing.T) {
	var f failList
	if err := f.Set("300:12"); err != nil {
		t.Fatalf("Set: %v", err)
	}
	if err := f.Set("600:40"); err != nil {
		t.Fatalf("Set: %v", err)
	}
	if len(f) != 2 || f[0].At != 300 || int(f[1].Machine) != 40 {
		t.Errorf("failures = %v", f)
	}
	for _, bad := range []string{"300", "x:1", "1:y", ""} {
		var g failList
		if err := g.Set(bad); err == nil {
			t.Errorf("Set(%q): want error", bad)
		}
	}
	if f.String() == "" {
		t.Error("String empty")
	}
}

func TestRunOnlineTrace(t *testing.T) {
	out := filepath.Join(t.TempDir(), "run.jsonl")
	var sb strings.Builder
	err := run([]string{"-o", out, "-jobs", "30", "-load", "0.5", "-snapshot", "25"}, &sb)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(sb.String(), "online: 30 jobs") {
		t.Errorf("summary = %q", sb.String())
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatalf("open trace: %v", err)
	}
	defer f.Close()
	events, err := trace.Read(f)
	if err != nil {
		t.Fatalf("read trace: %v", err)
	}
	if len(events) == 0 {
		t.Fatal("empty trace")
	}
	kinds := make(map[trace.Kind]bool)
	for _, e := range events {
		kinds[e.Kind] = true
	}
	if !kinds[trace.KindAdmit] || !kinds[trace.KindComplete] || !kinds[trace.KindSnapshot] {
		t.Errorf("missing kinds in %v", kinds)
	}
}

func TestRunBatchTraceWithFailure(t *testing.T) {
	out := filepath.Join(t.TempDir(), "batch.jsonl")
	var sb strings.Builder
	err := run([]string{"-o", out, "-batch", "-jobs", "20", "-fail", "30:5"}, &sb)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(sb.String(), "batch: 20 jobs") {
		t.Errorf("summary = %q", sb.String())
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatalf("open trace: %v", err)
	}
	defer f.Close()
	events, err := trace.Read(f)
	if err != nil {
		t.Fatalf("read trace: %v", err)
	}
	sawMachineFail := false
	for _, e := range events {
		if e.Kind == trace.KindMachineFail {
			sawMachineFail = true
		}
	}
	if !sawMachineFail {
		t.Error("no machine_fail event in trace")
	}
}

func TestRunBadFlags(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-scale", "galactic"}, &sb); err == nil {
		t.Error("bad scale accepted")
	}
	if err := run([]string{"-abstraction", "psychic"}, &sb); err == nil {
		t.Error("bad abstraction accepted")
	}
	if err := run([]string{"-fail", "nope"}, &sb); err == nil {
		t.Error("bad failure accepted")
	}
}

func TestRunAnalyzeMode(t *testing.T) {
	out := filepath.Join(t.TempDir(), "run.jsonl")
	var sb strings.Builder
	if err := run([]string{"-o", out, "-jobs", "20", "-load", "0.5"}, &sb); err != nil {
		t.Fatalf("record run: %v", err)
	}
	var report strings.Builder
	if err := run([]string{"-analyze", out}, &report); err != nil {
		t.Fatalf("analyze: %v", err)
	}
	for _, want := range []string{"trace span", "admitted", "concurrency"} {
		if !strings.Contains(report.String(), want) {
			t.Errorf("report missing %q:\n%s", want, report.String())
		}
	}
	if err := run([]string{"-analyze", "/does/not/exist"}, &report); err == nil {
		t.Error("missing analyze file accepted")
	}
}

// TestJobFileReplay: dumping a population and replaying it produces the
// identical summary (the whole run is a pure function of jobs + config).
func TestJobFileReplay(t *testing.T) {
	dir := t.TempDir()
	jobsPath := filepath.Join(dir, "jobs.json")
	trace1 := filepath.Join(dir, "a.jsonl")
	trace2 := filepath.Join(dir, "b.jsonl")

	var s1 strings.Builder
	if err := run([]string{"-o", trace1, "-jobs", "25", "-dump-jobs", jobsPath}, &s1); err != nil {
		t.Fatalf("first run: %v", err)
	}
	var s2 strings.Builder
	if err := run([]string{"-o", trace2, "-jobs-file", jobsPath}, &s2); err != nil {
		t.Fatalf("replay run: %v", err)
	}
	if s1.String() != s2.String() {
		t.Errorf("replay summary differs:\n%s\nvs\n%s", s1.String(), s2.String())
	}
	a, err := os.ReadFile(trace1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(trace2)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Error("replay trace differs from original")
	}
	if err := run([]string{"-jobs-file", "/does/not/exist"}, &s2); err == nil {
		t.Error("missing jobs file accepted")
	}
}
