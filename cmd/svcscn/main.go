// Command svcscn runs declarative scenarios (scenarios/*.yaml) against
// the SVC controller and checks their assertion blocks.
//
// Usage:
//
//	svcscn validate scenarios/*.yaml        # parse + validate only
//	svcscn run scenarios/baseline.yaml      # offline run, human report
//	svcscn run -backend live file.yaml      # in-process svcd over HTTP+WAL
//	svcscn run -backend both file.yaml      # both, and require agreement
//	svcscn run -seed 99 -json file.yaml     # override seed, JSON report
//
// With -backend live and no -addr, svcscn starts an in-process daemon
// with a temporary nosync write-ahead log; -addr points it at an already
// running svcd instead.
//
// Exit status: 0 all runs passed, 1 an assertion failed (or the backends
// disagreed under -backend both), 2 the run itself broke.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/scenario"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, out, errOut io.Writer) int {
	if len(args) < 1 {
		fmt.Fprintln(errOut, "usage: svcscn <run|validate> [flags] <scenario.yaml>...")
		return 2
	}
	switch args[0] {
	case "validate":
		return runValidate(args[1:], out, errOut)
	case "run":
		return runRun(args[1:], out, errOut)
	default:
		fmt.Fprintf(errOut, "svcscn: unknown subcommand %q (want run or validate)\n", args[0])
		return 2
	}
}

func load(path string) (*scenario.Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	s, err := scenario.Decode(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

func runValidate(args []string, out, errOut io.Writer) int {
	fs := flag.NewFlagSet("svcscn validate", flag.ContinueOnError)
	fs.SetOutput(errOut)
	quiet := fs.Bool("q", false, "suppress per-file output")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() == 0 {
		fmt.Fprintln(errOut, "svcscn validate: no scenario files given")
		return 2
	}
	bad := 0
	for _, path := range fs.Args() {
		s, err := load(path)
		if err != nil {
			fmt.Fprintf(errOut, "svcscn: %v\n", err)
			bad++
			continue
		}
		if !*quiet {
			fmt.Fprintf(out, "%s: ok (%s)\n", path, s.Name)
		}
	}
	if bad > 0 {
		return 2
	}
	return 0
}

func runRun(args []string, out, errOut io.Writer) int {
	fs := flag.NewFlagSet("svcscn run", flag.ContinueOnError)
	fs.SetOutput(errOut)
	var (
		backend = fs.String("backend", "sim", "backend: sim | live | both")
		addr    = fs.String("addr", "", "base URL of a running svcd (live backend); empty starts one in-process")
		seed    = fs.Uint64("seed", 0, "override the scenario seed (0 = use the file's)")
		asJSON  = fs.Bool("json", false, "emit the JSON report instead of the human-readable one")
		outDir  = fs.String("o", "", "also write <name>.<backend>.json report files into this directory")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() == 0 {
		fmt.Fprintln(errOut, "svcscn run: no scenario files given")
		return 2
	}
	switch *backend {
	case "sim", "live", "both":
	default:
		fmt.Fprintf(errOut, "svcscn run: unknown backend %q (want sim, live, or both)\n", *backend)
		return 2
	}

	status := 0
	for _, path := range fs.Args() {
		s, err := load(path)
		if err != nil {
			fmt.Fprintf(errOut, "svcscn: %v\n", err)
			return 2
		}
		var reports []*scenario.Report
		if *backend == "sim" || *backend == "both" {
			rep, err := runOne(s, *seed, "sim", "")
			if err != nil {
				fmt.Fprintf(errOut, "svcscn: %s [sim]: %v\n", path, err)
				return 2
			}
			reports = append(reports, rep)
		}
		if *backend == "live" || *backend == "both" {
			rep, err := runOne(s, *seed, "live", *addr)
			if err != nil {
				fmt.Fprintf(errOut, "svcscn: %s [live]: %v\n", path, err)
				return 2
			}
			reports = append(reports, rep)
		}
		for _, rep := range reports {
			if err := emit(rep, *asJSON, *outDir, out); err != nil {
				fmt.Fprintf(errOut, "svcscn: %v\n", err)
				return 2
			}
			if !rep.Pass {
				status = 1
			}
		}
		if len(reports) == 2 {
			if msg := diverges(reports[0], reports[1]); msg != "" {
				fmt.Fprintf(errOut, "svcscn: %s: backends disagree: %s\n", path, msg)
				status = 1
			}
		}
	}
	return status
}

// runOne compiles and executes one scenario on one backend.
func runOne(s *scenario.Scenario, seed uint64, backend, addr string) (*scenario.Report, error) {
	if seed == 0 {
		seed = s.Seed
	}
	plan, err := s.CompileSeeded(seed)
	if err != nil {
		return nil, err
	}
	var b scenario.Backend
	switch backend {
	case "sim":
		if s.Run.Shards > 0 {
			dir, err := os.MkdirTemp("", "svcscn-shard-*")
			if err != nil {
				return nil, err
			}
			defer os.RemoveAll(dir)
			cfg := scenario.LocalConfig{Topo: plan.Topo, Eps: s.Eps, Admission: s.Run.Admission}
			b, err = scenario.NewShardBackend(dir, cfg, s.Run.Shards, s.Run.ShardMode)
			if err != nil {
				return nil, err
			}
			break
		}
		b, err = scenario.NewSimBackend(plan.Topo, s.Eps, s.Run.Admission)
		if err != nil {
			return nil, err
		}
	case "live":
		failovers := s.Chaos != nil && len(s.Chaos.Failovers) > 0
		if failovers && addr != "" {
			return nil, fmt.Errorf("chaos.failovers needs the runner to own the daemon; drop -addr")
		}
		if failovers && s.Run.Shards > 0 {
			return nil, fmt.Errorf("sharded failovers crash-recover the router in-process; run them with -backend sim")
		}
		base := addr
		var lb *scenario.LiveBackend
		if base == "" {
			dir, err := os.MkdirTemp("", "svcscn-wal-*")
			if err != nil {
				return nil, err
			}
			defer os.RemoveAll(dir)
			cfg := scenario.LocalConfig{
				Topo: plan.Topo, Eps: s.Eps, Admission: s.Run.Admission, StateDir: dir,
				Shards: s.Run.Shards, ShardMode: s.Run.ShardMode,
			}
			if failovers {
				pair, err := scenario.StartLocalPair(cfg)
				if err != nil {
					return nil, err
				}
				defer pair.Close()
				lb = scenario.NewLiveBackend(pair.URL)
				lb.SetFailover(pair.Failover)
			} else {
				srv, err := scenario.StartLocal(cfg)
				if err != nil {
					return nil, err
				}
				defer srv.Close()
				base = srv.URL
			}
		}
		if lb == nil {
			lb = scenario.NewLiveBackend(base)
		}
		b = lb
	}
	defer b.Close()
	return scenario.Run(plan, b)
}

// diverges compares the outcome counts two backends produced for the
// same plan; empty means they agree.
func diverges(a, b *scenario.Report) string {
	switch {
	case a.Admitted != b.Admitted || a.Rejected != b.Rejected:
		return fmt.Sprintf("admissions %d/%d vs %d/%d", a.Admitted, a.Rejected, b.Admitted, b.Rejected)
	case a.Completed != b.Completed || a.Killed != b.Killed || a.Evicted != b.Evicted:
		return fmt.Sprintf("lifecycle %d/%d/%d vs %d/%d/%d",
			a.Completed, a.Killed, a.Evicted, b.Completed, b.Killed, b.Evicted)
	case a.Pass != b.Pass:
		return fmt.Sprintf("verdict %v vs %v", a.Pass, b.Pass)
	}
	return ""
}

func emit(rep *scenario.Report, asJSON bool, outDir string, out io.Writer) error {
	buf, err := rep.JSON()
	if err != nil {
		return err
	}
	if outDir != "" {
		path := fmt.Sprintf("%s/%s.%s.json", outDir, rep.Scenario, rep.Backend)
		if err := os.WriteFile(path, buf, 0o644); err != nil {
			return err
		}
	}
	if asJSON {
		_, err = out.Write(buf)
		return err
	}
	_, err = io.WriteString(out, rep.Render())
	return err
}
