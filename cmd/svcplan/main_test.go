package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeFile(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatalf("write %s: %v", name, err)
	}
	return path
}

const smallTopo = `{
  "children": [
    {"upCapMbps": 1000, "children": [
      {"upCapMbps": 500, "slots": 4},
      {"upCapMbps": 500, "slots": 4}
    ]},
    {"upCapMbps": 1000, "children": [
      {"upCapMbps": 500, "slots": 4},
      {"upCapMbps": 500, "slots": 4}
    ]}
  ]
}`

func TestPlanMixedRequests(t *testing.T) {
	topoPath := writeFile(t, "topo.json", smallTopo)
	reqPath := writeFile(t, "reqs.json", `{
	  "requests": [
	    {"n": 6, "mu": 100, "sigma": 40},
	    {"n": 3, "bandwidth": 120},
	    {"demands": [{"mu": 200, "sigma": 50}, {"mu": 80}]},
	    {"n": 100, "mu": 10}
	  ]
	}`)
	var sb strings.Builder
	if err := run([]string{"-topo", topoPath, "-requests", reqPath}, &sb); err != nil {
		t.Fatalf("run: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 5 { // 4 placements + summary
		t.Fatalf("output lines = %d:\n%s", len(lines), sb.String())
	}
	var first placementOut
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatalf("parse line 0: %v", err)
	}
	if !first.Accepted || first.VMs != 6 {
		t.Errorf("request 0 = %+v, want accepted with 6 VMs", first)
	}
	var fourth placementOut
	if err := json.Unmarshal([]byte(lines[3]), &fourth); err != nil {
		t.Fatalf("parse line 3: %v", err)
	}
	if fourth.Accepted {
		t.Error("oversized request 3 was accepted")
	}
	if !strings.Contains(lines[4], `"accepted":3`) {
		t.Errorf("summary = %s", lines[4])
	}
}

func TestEmitTopoRoundTrip(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-emit-topo", "quick"}, &sb); err != nil {
		t.Fatalf("run: %v", err)
	}
	topoPath := writeFile(t, "emitted.json", sb.String())
	reqPath := writeFile(t, "reqs.json", `{"requests": [{"n": 8, "mu": 200, "sigma": 60}]}`)
	var out strings.Builder
	if err := run([]string{"-topo", topoPath, "-requests", reqPath}, &out); err != nil {
		t.Fatalf("run with emitted topo: %v", err)
	}
	if !strings.Contains(out.String(), `"accepted":true`) {
		t.Errorf("output = %s", out.String())
	}
}

func TestPlanPolicies(t *testing.T) {
	reqPath := writeFile(t, "reqs.json", `{"requests": [{"n": 4, "mu": 100, "sigma": 30}]}`)
	topoPath := writeFile(t, "topo.json", smallTopo)
	for _, policy := range []string{"minmax", "first-feasible"} {
		var sb strings.Builder
		if err := run([]string{"-topo", topoPath, "-requests", reqPath, "-policy", policy}, &sb); err != nil {
			t.Fatalf("policy %s: %v", policy, err)
		}
	}
	for _, hetero := range []string{"substring", "exact", "firstfit"} {
		var sb strings.Builder
		if err := run([]string{"-topo", topoPath, "-requests", reqPath, "-hetero", hetero}, &sb); err != nil {
			t.Fatalf("hetero %s: %v", hetero, err)
		}
	}
}

func TestPlanBadInputs(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{}, &sb); err == nil {
		t.Error("missing -requests accepted")
	}
	if err := run([]string{"-requests", "/does/not/exist.json"}, &sb); err == nil {
		t.Error("missing request file accepted")
	}
	bad := writeFile(t, "bad.json", `{"requests": []}`)
	if err := run([]string{"-requests", bad}, &sb); err == nil {
		t.Error("empty request list accepted")
	}
	unknown := writeFile(t, "unknown.json", `{"requests": [{"n": 2, "mu": 1, "frobnicate": true}]}`)
	if err := run([]string{"-requests", unknown}, &sb); err == nil {
		t.Error("unknown request field accepted")
	}
	reqPath := writeFile(t, "ok.json", `{"requests": [{"n": 2, "mu": 1}]}`)
	if err := run([]string{"-requests", reqPath, "-policy", "psychic"}, &sb); err == nil {
		t.Error("unknown policy accepted")
	}
	if err := run([]string{"-requests", reqPath, "-hetero", "psychic"}, &sb); err == nil {
		t.Error("unknown hetero allocator accepted")
	}
	if err := run([]string{"-emit-topo", "galactic"}, &sb); err == nil {
		t.Error("unknown builtin topology accepted")
	}
}

// TestPlanInvalidRequestReported: a structurally invalid request is
// reported inline, not fatal.
func TestPlanInvalidRequestReported(t *testing.T) {
	topoPath := writeFile(t, "topo.json", smallTopo)
	reqPath := writeFile(t, "reqs.json", `{"requests": [{"n": 0, "mu": 100}, {"n": 2, "mu": 100}]}`)
	var sb strings.Builder
	if err := run([]string{"-topo", topoPath, "-requests", reqPath}, &sb); err != nil {
		t.Fatalf("run: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	var first placementOut
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatalf("parse: %v", err)
	}
	if first.Accepted || first.Error == "" {
		t.Errorf("invalid request 0 = %+v, want inline error", first)
	}
}
