// Command svcplan is an offline placement planner: it loads a datacenter
// topology and a list of tenant requests, admits them in order through the
// SVC network manager, and reports each placement (or rejection) as JSON
// lines.
//
//	svcplan -requests reqs.json                    # paper topology
//	svcplan -topo dc.json -requests reqs.json -eps 0.02
//	svcplan -emit-topo paper > dc.json             # export a builtin topology
//
// Request file format (JSON):
//
//	{"requests": [
//	  {"n": 10, "mu": 300, "sigma": 120},          // homogeneous SVC
//	  {"n": 4,  "bandwidth": 250},                 // deterministic VC
//	  {"demands": [{"mu": 500, "sigma": 100},      // heterogeneous SVC
//	               {"mu": 100, "sigma": 20}]}
//	]}
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"

	"repro/internal/core"
	"repro/internal/stats"
	"repro/internal/topology"
)

// startCPUProfile begins a CPU profile into path and returns the stop
// function; diagnose allocator hot-path regressions with
// `go tool pprof svcplan cpu.out`.
func startCPUProfile(path string) (func(), error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("cpuprofile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("cpuprofile: %w", err)
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}, nil
}

// writeMemProfile snapshots the heap (after a GC, so it reflects live
// memory) into path.
func writeMemProfile(path string) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "memprofile:", err)
		return
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		fmt.Fprintln(os.Stderr, "memprofile:", err)
	}
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "svcplan:", err)
		os.Exit(1)
	}
}

// requestFile is the on-disk request list.
type requestFile struct {
	Requests []requestSpec `json:"requests"`
}

// requestSpec is one request in any of the three supported shapes.
type requestSpec struct {
	N         int          `json:"n,omitempty"`
	Mu        float64      `json:"mu,omitempty"`
	Sigma     float64      `json:"sigma,omitempty"`
	Bandwidth float64      `json:"bandwidth,omitempty"`
	Demands   []demandSpec `json:"demands,omitempty"`
}

type demandSpec struct {
	Mu    float64 `json:"mu"`
	Sigma float64 `json:"sigma,omitempty"`
}

// placementOut is one JSON line of output.
type placementOut struct {
	Request  int             `json:"request"`
	Accepted bool            `json:"accepted"`
	Error    string          `json:"error,omitempty"`
	VMs      int             `json:"vms,omitempty"`
	Machines []machinePlaced `json:"machines,omitempty"`
	MaxOcc   float64         `json:"maxOccupancy"`
}

type machinePlaced struct {
	Machine int   `json:"machine"`
	Count   int   `json:"count"`
	VMs     []int `json:"vmIndices,omitempty"`
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("svcplan", flag.ContinueOnError)
	var (
		topoPath = fs.String("topo", "", "topology spec JSON (default: builtin paper topology)")
		reqPath  = fs.String("requests", "", "request list JSON (required unless -emit-topo)")
		eps      = fs.Float64("eps", 0.05, "risk factor")
		policy   = fs.String("policy", "minmax", "placement policy: minmax|first-feasible|greedy-pack")
		hetero   = fs.String("hetero", "substring", "heterogeneous allocator: substring|exact|firstfit")
		emitTopo = fs.String("emit-topo", "", "write a builtin topology spec (paper|quick) to stdout and exit")
		cpuProf  = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = fs.String("memprofile", "", "write a heap profile to this file on exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *cpuProf != "" {
		stop, err := startCPUProfile(*cpuProf)
		if err != nil {
			return err
		}
		defer stop()
	}
	if *memProf != "" {
		defer writeMemProfile(*memProf)
	}

	if *emitTopo != "" {
		var cfg topology.ThreeTierConfig
		switch *emitTopo {
		case "paper":
			cfg = topology.PaperConfig()
		case "quick":
			cfg = topology.ThreeTierConfig{
				Aggs: 2, ToRsPerAgg: 3, MachinesPerRack: 20, SlotsPerMachine: 4,
				HostCap: 1000, Oversub: 2,
			}
		default:
			return fmt.Errorf("unknown builtin topology %q", *emitTopo)
		}
		tp, err := topology.NewThreeTier(cfg)
		if err != nil {
			return err
		}
		return topology.WriteSpec(out, tp.ToSpec())
	}

	if *reqPath == "" {
		return errors.New("-requests is required")
	}

	topo, err := loadTopology(*topoPath)
	if err != nil {
		return err
	}
	reqs, err := loadRequests(*reqPath)
	if err != nil {
		return err
	}

	opts := []core.ManagerOption{}
	switch *policy {
	case "minmax":
		opts = append(opts, core.WithPolicy(core.MinMaxOccupancy))
	case "first-feasible":
		opts = append(opts, core.WithPolicy(core.FirstFeasible))
	case "greedy-pack":
		opts = append(opts, core.WithPolicy(core.GreedyPack))
	default:
		return fmt.Errorf("unknown policy %q", *policy)
	}
	switch *hetero {
	case "substring":
		opts = append(opts, core.WithHeteroAlgorithm(core.HeteroSubstring))
	case "exact":
		opts = append(opts, core.WithHeteroAlgorithm(core.HeteroExact))
	case "firstfit":
		opts = append(opts, core.WithHeteroAlgorithm(core.HeteroFirstFit))
	default:
		return fmt.Errorf("unknown hetero allocator %q", *hetero)
	}

	mgr, err := core.NewManager(topo, *eps, opts...)
	if err != nil {
		return err
	}

	enc := json.NewEncoder(out)
	accepted := 0
	for i, spec := range reqs {
		alloc, err := admit(mgr, spec)
		line := placementOut{Request: i}
		if err != nil {
			line.Error = err.Error()
		} else {
			accepted++
			line.Accepted = true
			line.VMs = alloc.Placement.TotalVMs()
			for _, e := range alloc.Placement.Entries {
				line.Machines = append(line.Machines, machinePlaced{
					Machine: int(e.Machine), Count: e.Count, VMs: e.VMs,
				})
			}
		}
		line.MaxOcc = mgr.MaxOccupancy()
		if err := enc.Encode(line); err != nil {
			return err
		}
	}
	fmt.Fprintf(out, "{\"summary\":{\"accepted\":%d,\"rejected\":%d,\"freeSlots\":%d}}\n",
		accepted, len(reqs)-accepted, mgr.FreeSlots())
	return nil
}

func loadTopology(path string) (*topology.Topology, error) {
	if path == "" {
		return topology.NewThreeTier(topology.PaperConfig())
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	spec, err := topology.ReadSpec(f)
	if err != nil {
		return nil, err
	}
	return topology.NewFromSpec(spec)
}

func loadRequests(path string) ([]requestSpec, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var rf requestFile
	dec := json.NewDecoder(f)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&rf); err != nil {
		return nil, fmt.Errorf("parse %s: %w", path, err)
	}
	if len(rf.Requests) == 0 {
		return nil, fmt.Errorf("%s contains no requests", path)
	}
	return rf.Requests, nil
}

// admit builds and allocates the request described by spec.
func admit(mgr *core.Manager, spec requestSpec) (*core.Allocation, error) {
	switch {
	case len(spec.Demands) > 0:
		demands := make([]stats.Normal, len(spec.Demands))
		for i, d := range spec.Demands {
			demands[i] = stats.Normal{Mu: d.Mu, Sigma: d.Sigma}
		}
		req, err := core.NewHeterogeneous(demands)
		if err != nil {
			return nil, err
		}
		return mgr.AllocateHetero(req)
	case spec.Bandwidth > 0:
		req, err := core.NewDeterministic(spec.N, spec.Bandwidth)
		if err != nil {
			return nil, err
		}
		return mgr.AllocateHomog(req)
	default:
		req, err := core.NewHomogeneous(spec.N, stats.Normal{Mu: spec.Mu, Sigma: spec.Sigma})
		if err != nil {
			return nil, err
		}
		return mgr.AllocateHomog(req)
	}
}
