// Command svcsim regenerates the evaluation tables and figures of the SVC
// paper (Yu and Shen, ICDCS 2014) from this reproduction.
//
// Usage:
//
//	svcsim -fig all                 # every experiment at quick scale
//	svcsim -fig 5 -scale paper      # Fig. 5 at the paper's full scale
//	svcsim -fig 7 -loads 0.2,0.4    # override the load sweep
//
// Figures: 5 (batch completion vs oversubscription), 6 (job time vs demand
// deviation), 7 (rejection vs load), 8 (concurrency at 60% load),
// 9 (occupancy CDF, SVC vs adapted TIVC), 10 (rejection, SVC vs adapted
// TIVC), hetero (substring heuristic vs first fit).
//
// Declarative scenarios (docs/SCENARIOS.md) also run here on the offline
// engine — `svcsim -scenario scenarios/baseline.yaml` — while cmd/svcscn
// adds the live-daemon backend and differential mode.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/scenario"
)

// startCPUProfile begins a CPU profile into path and returns the stop
// function; diagnose allocator hot-path regressions with
// `go tool pprof svcsim cpu.out`.
func startCPUProfile(path string) (func(), error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("cpuprofile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("cpuprofile: %w", err)
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}, nil
}

// writeMemProfile snapshots the heap (after a GC, so it reflects live
// memory) into path.
func writeMemProfile(path string) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "memprofile:", err)
		return
	}
	defer f.Close()
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		fmt.Fprintln(os.Stderr, "memprofile:", err)
	}
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "svcsim:", err)
		os.Exit(1)
	}
}

type renderer interface{ Render() string }

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("svcsim", flag.ContinueOnError)
	var (
		fig      = fs.String("fig", "all", "experiment to run: 5|6|7|8|9|10|hetero|eps|mixed|burst|defer|locality|tiers|scaling|failures|all")
		scale    = fs.String("scale", "quick", "datacenter/workload scale: quick|paper")
		jobs     = fs.Int("jobs", 0, "override job count")
		seed     = fs.Uint64("seed", 0, "override workload seed")
		oversubs = fs.String("oversubs", "", "comma-separated oversubscription sweep (fig 5)")
		rhos     = fs.String("rhos", "", "comma-separated deviation sweep (fig 6)")
		loads    = fs.String("loads", "", "comma-separated load sweep (figs 7, 9, 10, hetero)")
		load     = fs.Float64("load", 0.6, "load for fig 8")
		mtbfs    = fs.String("mtbfs", "", "comma-separated per-machine MTBF sweep in seconds (failures)")
		mttr     = fs.Float64("mttr", 0, "mean machine repair time in seconds, 0 = default (failures)")
		scn      = fs.String("scenario", "", "run a declarative scenario file on the offline engine instead of a figure (docs/SCENARIOS.md)")
		timing   = fs.Bool("time", false, "print wall-clock time per experiment")
		asJSON   = fs.Bool("json", false, "emit results as JSON instead of tables")
		cpuProf  = fs.String("cpuprofile", "", "write a CPU profile to this file")
		memProf  = fs.String("memprofile", "", "write a heap profile to this file on exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *cpuProf != "" {
		stop, err := startCPUProfile(*cpuProf)
		if err != nil {
			return err
		}
		defer stop()
	}
	if *memProf != "" {
		defer writeMemProfile(*memProf)
	}

	if *scn != "" {
		return runScenario(*scn, *seed, *asJSON, out)
	}

	var sc experiments.Scale
	switch *scale {
	case "quick":
		sc = experiments.QuickScale()
	case "paper":
		sc = experiments.PaperScale()
	default:
		return fmt.Errorf("unknown scale %q (want quick or paper)", *scale)
	}
	if *jobs > 0 {
		sc.Jobs = *jobs
	}
	if *seed != 0 {
		sc.Seed = *seed
	}

	oversubList, err := parseFloats(*oversubs)
	if err != nil {
		return fmt.Errorf("-oversubs: %w", err)
	}
	rhoList, err := parseFloats(*rhos)
	if err != nil {
		return fmt.Errorf("-rhos: %w", err)
	}
	loadList, err := parseFloats(*loads)
	if err != nil {
		return fmt.Errorf("-loads: %w", err)
	}
	mtbfList, err := parseFloats(*mtbfs)
	if err != nil {
		return fmt.Errorf("-mtbfs: %w", err)
	}

	table := map[string]func() (renderer, error){
		"5":        func() (renderer, error) { return experiments.Fig5(sc, oversubList) },
		"6":        func() (renderer, error) { return experiments.Fig6(sc, rhoList) },
		"7":        func() (renderer, error) { return experiments.Fig7(sc, loadList) },
		"8":        func() (renderer, error) { return experiments.Fig8(sc, *load) },
		"9":        func() (renderer, error) { return experiments.Fig9(sc, loadList) },
		"10":       func() (renderer, error) { return experiments.Fig10(sc, loadList) },
		"hetero":   func() (renderer, error) { return experiments.Hetero(sc, loadList) },
		"eps":      func() (renderer, error) { return experiments.EpsSweep(sc, *load, nil) },
		"mixed":    func() (renderer, error) { return experiments.Mixed(sc, *load, nil) },
		"burst":    func() (renderer, error) { return experiments.Burst(sc, 0, nil) },
		"defer":    func() (renderer, error) { return experiments.Deferral(sc, *load, nil) },
		"locality": func() (renderer, error) { return experiments.Locality(sc) },
		"tiers":    func() (renderer, error) { return experiments.Tiers(sc, *load) },
		"scaling":  func() (renderer, error) { return experiments.ScaleSweep(*load, nil) },
		"failures": func() (renderer, error) { return experiments.Failures(sc, *load, *mttr, mtbfList) },
	}
	order := []string{"5", "6", "7", "8", "9", "10", "hetero", "eps", "mixed", "burst", "defer", "locality", "tiers", "scaling", "failures"}

	var selected []string
	if *fig == "all" {
		selected = order
	} else {
		for _, f := range strings.Split(*fig, ",") {
			f = strings.TrimSpace(f)
			if _, ok := table[f]; !ok {
				return fmt.Errorf("unknown figure %q", f)
			}
			selected = append(selected, f)
		}
	}

	for _, f := range selected {
		start := time.Now()
		res, err := table[f]()
		if err != nil {
			return fmt.Errorf("fig %s: %w", f, err)
		}
		if *asJSON {
			enc := json.NewEncoder(out)
			if err := enc.Encode(map[string]any{"figure": f, "result": res}); err != nil {
				return err
			}
		} else {
			fmt.Fprint(out, res.Render())
			fmt.Fprintln(out)
		}
		if *timing {
			fmt.Fprintf(out, "[fig %s took %v]\n", f, time.Since(start).Round(time.Millisecond))
		}
	}
	return nil
}

// runScenario executes one declarative scenario on the offline engine
// and renders its report; a failed assertion is an error so the exit
// status reflects the verdict (cmd/svcscn is the full driver).
func runScenario(path string, seed uint64, asJSON bool, out io.Writer) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	s, err := scenario.Decode(data)
	if err != nil {
		return err
	}
	if err := s.Validate(); err != nil {
		return err
	}
	if seed != 0 {
		s.Seed = seed
	}
	plan, err := s.Compile()
	if err != nil {
		return err
	}
	b, err := scenario.NewSimBackend(plan.Topo, s.Eps, s.Run.Admission)
	if err != nil {
		return err
	}
	defer b.Close()
	rep, err := scenario.Run(plan, b)
	if err != nil {
		return err
	}
	if asJSON {
		buf, err := rep.JSON()
		if err != nil {
			return err
		}
		if _, err := out.Write(append(buf, '\n')); err != nil {
			return err
		}
	} else if _, err := io.WriteString(out, rep.Render()); err != nil {
		return err
	}
	if !rep.Pass {
		return fmt.Errorf("scenario %s failed its assertions", s.Name)
	}
	return nil
}

func parseFloats(s string) ([]float64, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}
