package main

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

func TestParseFloats(t *testing.T) {
	tests := []struct {
		give    string
		want    []float64
		wantErr bool
	}{
		{"", nil, false},
		{"  ", nil, false},
		{"1,2.5,3", []float64{1, 2.5, 3}, false},
		{" 0.2 , 0.6 ", []float64{0.2, 0.6}, false},
		{"1,x", nil, true},
	}
	for _, tt := range tests {
		got, err := parseFloats(tt.give)
		if (err != nil) != tt.wantErr {
			t.Errorf("parseFloats(%q) err = %v", tt.give, err)
			continue
		}
		if !tt.wantErr && !reflect.DeepEqual(got, tt.want) {
			t.Errorf("parseFloats(%q) = %v, want %v", tt.give, got, tt.want)
		}
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-scale", "galactic"}, &sb); err == nil {
		t.Error("unknown scale accepted")
	}
	if err := run([]string{"-fig", "99"}, &sb); err == nil {
		t.Error("unknown figure accepted")
	}
	if err := run([]string{"-oversubs", "a,b"}, &sb); err == nil {
		t.Error("bad oversubs accepted")
	}
	if err := run([]string{"-not-a-flag"}, &sb); err == nil {
		t.Error("bad flag accepted")
	}
}

func TestRunFig8Quick(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-fig", "8", "-jobs", "40"}, &sb)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	out := sb.String()
	if !strings.Contains(out, "Fig 8") || !strings.Contains(out, "concurrency ratio") {
		t.Errorf("unexpected output:\n%s", out)
	}
}

func TestRunMultipleFigures(t *testing.T) {
	var sb strings.Builder
	err := run([]string{"-fig", "9,10", "-jobs", "40", "-loads", "0.4", "-time"}, &sb)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	out := sb.String()
	if !strings.Contains(out, "Fig 9") || !strings.Contains(out, "Fig 10") {
		t.Errorf("missing figures:\n%s", out)
	}
	if !strings.Contains(out, "took") {
		t.Errorf("missing timing lines:\n%s", out)
	}
}

func TestRunJSONOutput(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-fig", "10", "-jobs", "40", "-loads", "0.4", "-json"}, &sb); err != nil {
		t.Fatalf("run: %v", err)
	}
	var doc struct {
		Figure string `json:"figure"`
		Result struct {
			Models        []string    `json:"Models"`
			RejectionRate [][]float64 `json:"RejectionRate"`
		} `json:"result"`
	}
	if err := json.Unmarshal([]byte(strings.TrimSpace(sb.String())), &doc); err != nil {
		t.Fatalf("parse JSON output: %v\n%s", err, sb.String())
	}
	if doc.Figure != "10" || len(doc.Result.Models) == 0 || len(doc.Result.RejectionRate) == 0 {
		t.Errorf("JSON doc = %+v", doc)
	}
}
