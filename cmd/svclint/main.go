// Command svclint runs the project's invariant analyzers over the
// module: the intra-package checks (lockcheck, journalseam,
// determinism, floatcmp, snapshotro) plus the whole-program v2 quartet
// (lockorder, durabilitycheck, errflow, goroutinelife), which share one
// call graph built over every loaded package.
//
// Standalone mode (the default, used by scripts/check.sh):
//
//	svclint [-format plain|github|json] [packages]
//
// Packages default to ./... relative to the current directory. Exit
// status is 1 when any finding (including a malformed //lint:
// directive) is reported.
//
// The binary also speaks enough of the go vet -vettool protocol
// (-V=full, -flags, unit .cfg files) to run as
//
//	go vet -vettool=$(command -v svclint) ./...
//
// so findings integrate with vet's per-package caching.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"go/token"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
	"repro/internal/analysis/all"
	"repro/internal/analysis/callgraph"
	"repro/internal/analysis/loader"
)

func main() {
	// go vet probes its vettool before handing it work.
	for _, arg := range os.Args[1:] {
		switch {
		case arg == "-V=full" || arg == "--V=full":
			fmt.Printf("svclint version 1 (suite: %s)\n", suiteNames())
			return
		case arg == "-flags" || arg == "--flags":
			fmt.Println("[]")
			return
		}
	}
	if len(os.Args) == 2 && strings.HasSuffix(os.Args[1], ".cfg") {
		os.Exit(unitcheck(os.Args[1]))
	}
	os.Exit(standalone())
}

func suiteNames() string {
	names := make([]string, len(all.Analyzers))
	for i, a := range all.Analyzers {
		names[i] = a.Name
	}
	return strings.Join(names, ",")
}

// directivesAnalyzer attributes malformed-directive findings.
var directivesAnalyzer = &analysis.Analyzer{
	Name: "directives",
	Doc:  "every //lint: escape hatch needs a justification",
}

// unitOf adapts a loaded package to a callgraph unit.
func unitOf(pkg *loader.Package) *callgraph.Unit {
	return &callgraph.Unit{Path: pkg.ImportPath, Fset: pkg.Fset, Files: pkg.Files, Pkg: pkg.Types, Info: pkg.Info}
}

// runSuite applies every analyzer plus the directive audit to one
// package and returns the findings in position order. graph is the
// whole-program call graph shared by every pass of the run.
func runSuite(pkg *loader.Package, graph *callgraph.Graph) ([]analysis.Diagnostic, error) {
	var out []analysis.Diagnostic
	for _, a := range all.Analyzers {
		pass := analysis.NewPass(a, pkg.Fset, pkg.Files, pkg.Types, pkg.Info)
		pass.Graph = graph
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %v", a.Name, pkg.ImportPath, err)
		}
		out = append(out, pass.Diagnostics()...)
	}
	dp := analysis.NewPass(directivesAnalyzer, pkg.Fset, pkg.Files, pkg.Types, pkg.Info)
	analysis.MalformedDirectives(dp)
	out = append(out, dp.Diagnostics()...)
	return out, nil
}

// --- standalone mode ---

func standalone() int {
	fs := flag.NewFlagSet("svclint", flag.ExitOnError)
	format := fs.String("format", "plain", "output format: plain, github, or json")
	fs.Parse(os.Args[1:])
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	dir, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "svclint:", err)
		return 2
	}
	pkgs, err := loader.Load(dir, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "svclint:", err)
		return 2
	}

	// Build the whole-program call graph once over every loaded package;
	// all analyzer passes share it.
	units := make([]*callgraph.Unit, len(pkgs))
	for i, pkg := range pkgs {
		units[i] = unitOf(pkg)
	}
	graph := callgraph.Build(units)

	var diags []analysis.Diagnostic
	for _, pkg := range pkgs {
		ds, err := runSuite(pkg, graph)
		if err != nil {
			fmt.Fprintln(os.Stderr, "svclint:", err)
			return 2
		}
		diags = append(diags, ds...)
	}
	emit(diags, *format, dir)
	if len(diags) > 0 {
		return 1
	}
	return 0
}

func emit(diags []analysis.Diagnostic, format, dir string) {
	switch format {
	case "json":
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		type jsonDiag struct {
			File     string `json:"file"`
			Line     int    `json:"line"`
			Column   int    `json:"column"`
			Message  string `json:"message"`
			Analyzer string `json:"analyzer"`
		}
		out := make([]jsonDiag, 0, len(diags))
		for _, d := range diags {
			out = append(out, jsonDiag{rel(dir, d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer})
		}
		enc.Encode(out)
	case "github":
		// GitHub workflow commands: rendered as inline check
		// annotations on the PR diff.
		for _, d := range diags {
			fmt.Printf("::error file=%s,line=%d,col=%d,title=svclint/%s::%s\n",
				rel(dir, d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
		}
	default:
		for _, d := range diags {
			fmt.Printf("%s:%d:%d: %s [%s]\n", rel(dir, d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
		}
	}
}

func rel(dir, file string) string {
	if r, err := filepath.Rel(dir, file); err == nil && !strings.HasPrefix(r, "..") {
		return r
	}
	return file
}

// --- go vet unitchecker mode ---

// vetConfig is the subset of the unit .cfg file go vet writes for its
// vettool.
type vetConfig struct {
	ID                        string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOutput                string
	VetxOnly                  bool
	SucceedOnTypecheckFailure bool
}

func unitcheck(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "svclint:", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintln(os.Stderr, "svclint: parse cfg:", err)
		return 2
	}
	// svclint passes no facts between packages, but vet insists the
	// output file exists before it will cache the unit.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "svclint:", err)
			return 2
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	// svclint polices production code: the standalone loader never sees
	// test files, so the vet path must skip test compilation units too
	// (tests compare exact expected floats, read wall clocks, etc.).
	if strings.Contains(cfg.ImportPath, " [") || strings.HasSuffix(cfg.ImportPath, ".test") ||
		strings.HasSuffix(cfg.ImportPath, "_test") {
		return 0
	}
	goFiles := cfg.GoFiles[:0]
	for _, f := range cfg.GoFiles {
		if !strings.HasSuffix(f, "_test.go") {
			goFiles = append(goFiles, f)
		}
	}
	cfg.GoFiles = goFiles
	if len(cfg.GoFiles) == 0 {
		return 0
	}

	exports := make(loader.Exports, len(cfg.PackageFile))
	for path, file := range cfg.PackageFile {
		exports[path] = file
	}
	for logical, actual := range cfg.ImportMap {
		if file, ok := cfg.PackageFile[actual]; ok {
			exports[logical] = file
		}
	}
	pkg, err := loader.CheckFiles(cfg.ImportPath, token.NewFileSet(), cfg.GoFiles, loader.NewImporter(exports))
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, "svclint:", err)
		return 2
	}
	// One package per vet invocation: the graph covers only this unit, so
	// graph-dependent analyzers degrade to intra-package precision here.
	diags, err := runSuite(pkg, callgraph.Build([]*callgraph.Unit{unitOf(pkg)}))
	if err != nil {
		fmt.Fprintln(os.Stderr, "svclint:", err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s:%d:%d: %s [%s]\n", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Message, d.Analyzer)
	}
	if len(diags) > 0 {
		return 2 // vet's "diagnostics reported" status
	}
	return 0
}
