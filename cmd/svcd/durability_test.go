package main

import (
	"context"
	"net/http"
	"testing"
	"time"

	"repro/internal/httpapi"
)

// startTestDaemon builds and starts an in-process svcd on a random port.
func startTestDaemon(t *testing.T, stateDir string) *daemon {
	t.Helper()
	d, err := newDaemon(config{
		addr:            "127.0.0.1:0",
		eps:             0.05,
		policy:          "minmax",
		stateDir:        stateDir,
		checkpointEvery: 4096,
		noSync:          true,
	})
	if err != nil {
		t.Fatalf("newDaemon: %v", err)
	}
	d.start()
	return d
}

func testClient(d *daemon) *httpapi.Client {
	return httpapi.NewClient("http://"+d.listener.Addr().String(), nil,
		httpapi.WithRetries(2), httpapi.WithBackoff(5*time.Millisecond, 50*time.Millisecond))
}

// TestDaemonSurvivesCrashRestart is the end-to-end acceptance check: jobs
// admitted and faults injected before an abrupt kill are all visible
// after a restart from the same -state-dir, and a duplicate allocate with
// the original idempotency key replays the placement without
// double-reserving.
func TestDaemonSurvivesCrashRestart(t *testing.T) {
	stateDir := t.TempDir()
	ctx := context.Background()

	d1 := startTestDaemon(t, stateDir)
	c1 := testClient(d1)
	keyedReq := httpapi.AllocationRequest{N: 4, Mu: 120, Sigma: 40}
	keyed, err := c1.Allocate(ctx, keyedReq, httpapi.WithIdempotencyKey("boot-1"))
	if err != nil {
		t.Fatalf("allocate: %v", err)
	}
	if _, err := c1.Allocate(ctx, httpapi.AllocationRequest{N: 2, Mu: 60}); err != nil {
		t.Fatalf("allocate: %v", err)
	}
	mc := int(d1.mgr.Topology().Machines()[0])
	if _, err := c1.Fault(ctx, httpapi.FaultRequest{Machine: &mc}); err != nil {
		t.Fatalf("fault: %v", err)
	}
	before, err := c1.Status(ctx)
	if err != nil {
		t.Fatalf("status: %v", err)
	}

	// Crash: stop serving without drain, checkpoint, or journal close.
	d1.server.Close()
	close(d1.stopTick)

	d2 := startTestDaemon(t, stateDir)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := d2.shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}()
	c2 := testClient(d2)
	after, err := c2.Status(ctx)
	if err != nil {
		t.Fatalf("status after restart: %v", err)
	}
	if after.RunningJobs != before.RunningJobs || after.FreeSlots != before.FreeSlots ||
		after.MachinesDown != before.MachinesDown {
		t.Fatalf("restarted status %+v != pre-crash %+v", after, before)
	}
	fstats, err := c2.Failures(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if fstats.MachineFailures != 1 {
		t.Errorf("machine failures after restart = %d, want 1", fstats.MachineFailures)
	}

	// The duplicate keyed allocate must replay, not re-reserve.
	replay, err := c2.Allocate(ctx, keyedReq, httpapi.WithIdempotencyKey("boot-1"))
	if err != nil {
		t.Fatalf("replayed allocate: %v", err)
	}
	if replay.ID != keyed.ID {
		t.Errorf("replay returned job %d, want %d", replay.ID, keyed.ID)
	}
	final, err := c2.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if final.FreeSlots != after.FreeSlots || final.RunningJobs != after.RunningJobs {
		t.Errorf("replayed allocate reserved again: %+v -> %+v", after, final)
	}
}

// TestDaemonGracefulShutdownSealsState: SIGTERM-style shutdown drains,
// checkpoints, and the next boot recovers from the snapshot alone.
func TestDaemonGracefulShutdownSealsState(t *testing.T) {
	stateDir := t.TempDir()
	ctx := context.Background()

	d1 := startTestDaemon(t, stateDir)
	c1 := testClient(d1)
	if _, err := c1.Allocate(ctx, httpapi.AllocationRequest{N: 3, Mu: 80, Sigma: 20}); err != nil {
		t.Fatal(err)
	}
	gen := d1.journal.Gen()
	sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := d1.shutdown(sctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	// Draining servers refuse mutations before the listener closes; after
	// shutdown the port is gone entirely.
	if _, err := c1.Status(ctx); err == nil {
		t.Error("status still served after shutdown")
	}

	d2 := startTestDaemon(t, stateDir)
	defer func() {
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		d2.shutdown(sctx)
	}()
	if d2.journal.Gen() <= gen {
		t.Errorf("shutdown did not checkpoint: gen %d -> %d", gen, d2.journal.Gen())
	}
	st, err := testClient(d2).Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.RunningJobs != 1 {
		t.Errorf("running jobs after graceful restart = %d, want 1", st.RunningJobs)
	}
}

// TestDaemonDrainRefusesWritesDuringShutdown: while shutdown drains, a
// mutating request racing it gets 503, never a hang or a lost write.
func TestDaemonDrainRefusesWritesDuringShutdown(t *testing.T) {
	d := startTestDaemon(t, t.TempDir())
	d.api.SetDraining(true)
	resp, err := http.Post("http://"+d.listener.Addr().String()+"/v1/allocations",
		"application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining daemon returned %d, want 503", resp.StatusCode)
	}
	sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := d.shutdown(sctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}
