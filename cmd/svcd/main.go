// Command svcd serves the SVC network manager over HTTP — the paper's
// admission-control component as a standalone daemon.
//
//	svcd -addr :8080                          # builtin paper topology
//	svcd -topo dc.json -eps 0.02              # custom datacenter, stricter SLA
//
// API (see internal/httpapi):
//
//	POST   /v1/allocations        {"n":49,"mu":300,"sigma":120} -> placement
//	DELETE /v1/allocations/{id}
//	POST   /v1/dryrun
//	GET    /v1/status
//	GET    /v1/links?limit=10
//	POST   /v1/faults             {"machine":3} / {"link":7,"restore":true}
//	POST   /v1/repairs            {"job":1} or {} for all displaced jobs
//	GET    /v1/failures
//
// Example session:
//
//	curl -s -X POST localhost:8080/v1/allocations -d '{"n":8,"mu":250,"sigma":100}'
//	curl -s localhost:8080/v1/status
//	curl -s -X POST localhost:8080/v1/faults -d '{"machine":3}'
//	curl -s -X POST localhost:8080/v1/repairs -d '{}'
//	curl -s localhost:8080/v1/failures
//	curl -s -X DELETE localhost:8080/v1/allocations/1
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/httpapi"
	"repro/internal/topology"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "svcd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("svcd", flag.ContinueOnError)
	var (
		addr     = fs.String("addr", "127.0.0.1:8080", "listen address")
		topoPath = fs.String("topo", "", "topology spec JSON (default: builtin paper topology)")
		eps      = fs.Float64("eps", 0.05, "risk factor for the probabilistic guarantee")
		policy   = fs.String("policy", "minmax", "placement policy: minmax|first-feasible|greedy-pack")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	topo, err := loadTopology(*topoPath)
	if err != nil {
		return err
	}
	var policyOpt core.ManagerOption
	switch *policy {
	case "minmax":
		policyOpt = core.WithPolicy(core.MinMaxOccupancy)
	case "first-feasible":
		policyOpt = core.WithPolicy(core.FirstFeasible)
	case "greedy-pack":
		policyOpt = core.WithPolicy(core.GreedyPack)
	default:
		return fmt.Errorf("unknown policy %q", *policy)
	}
	mgr, err := core.NewManager(topo, *eps, policyOpt)
	if err != nil {
		return err
	}

	server := &http.Server{
		Addr:              *addr,
		Handler:           httpapi.NewServer(mgr).Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	listener, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	log.Printf("svcd: serving %d machines (%d slots) at eps=%v on %s",
		len(topo.Machines()), topo.TotalSlots(), *eps, listener.Addr())

	// Serve until interrupted, then drain connections.
	errCh := make(chan error, 1)
	go func() { errCh <- server.Serve(listener) }()
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		return err
	case sig := <-stop:
		log.Printf("svcd: %v, shutting down", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := server.Shutdown(ctx); err != nil {
			return err
		}
		if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		return nil
	}
}

func loadTopology(path string) (*topology.Topology, error) {
	if path == "" {
		return topology.NewThreeTier(topology.PaperConfig())
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	spec, err := topology.ReadSpec(f)
	if err != nil {
		return nil, err
	}
	return topology.NewFromSpec(spec)
}
