// Command svcd serves the SVC network manager over HTTP — the paper's
// admission-control component as a standalone daemon.
//
//	svcd -addr :8080                          # builtin paper topology
//	svcd -topo dc.json -eps 0.02              # custom datacenter, stricter SLA
//	svcd -state-dir /var/lib/svcd             # durable: journal + crash recovery
//
// With -state-dir every state-changing operation is committed to a
// write-ahead log before it is applied, and a restart replays the log
// (plus the latest snapshot) into a bit-identical manager: admitted jobs,
// fault state, and idempotency keys all survive a crash or SIGKILL.
//
// API (see internal/httpapi):
//
//	POST   /v1/allocations        {"n":49,"mu":300,"sigma":120} -> placement
//	DELETE /v1/allocations/{id}
//	POST   /v1/dryrun
//	GET    /v1/status
//	GET    /v1/links?limit=10
//	POST   /v1/faults             {"machine":3} / {"link":7,"restore":true}
//	POST   /v1/repairs            {"job":1} or {} for all displaced jobs
//	GET    /v1/failures
//
// Mutating requests may carry an Idempotency-Key header; a repeated key
// replays the original outcome instead of re-executing, which makes
// client retries safe.
//
// Example session:
//
//	curl -s -X POST localhost:8080/v1/allocations -d '{"n":8,"mu":250,"sigma":100}'
//	curl -s localhost:8080/v1/status
//	curl -s -X POST localhost:8080/v1/faults -d '{"machine":3}'
//	curl -s -X POST localhost:8080/v1/repairs -d '{}'
//	curl -s localhost:8080/v1/failures
//	curl -s -X DELETE localhost:8080/v1/allocations/1
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/httpapi"
	"repro/internal/replica"
	"repro/internal/shard"
	"repro/internal/topology"
	"repro/internal/wal"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "svcd:", err)
		os.Exit(1)
	}
}

// config collects everything a daemon needs, parsed from flags in run and
// built directly in tests.
type config struct {
	addr            string
	topoPath        string
	eps             float64
	policy          string
	stateDir        string
	checkpointEvery int
	noSync          bool
	admission       string
	role            string // "primary" (default) or "standby"
	follow          string // primary base URL, required for a standby
	shards          int    // 0: unsharded; N: one pod-local shard per aggregation subtree
	shardMode       string // "strict" (default) or "fast"
}

// daemon is one running svcd instance: manager, optional journal, HTTP
// server. Split from run so tests can start and stop instances in-process.
type daemon struct {
	mgr      *core.Manager
	router   *shard.Router // non-nil with -shards; mgr is nil then
	api      *httpapi.Server
	journal  *wal.Journal // nil without -state-dir
	server   *http.Server
	listener net.Listener
	serveErr chan error
	stopTick chan struct{}

	// Standby role: the follower and its follow loop. roleMu guards the
	// promotion swap of mgr/journal/standby against shutdown.
	roleMu       sync.Mutex
	standby      *replica.Standby
	followCancel context.CancelFunc
	followDone   chan struct{}
	follow       string // the old primary's URL, fenced after promotion
	cfg          config
}

func newDaemon(cfg config) (*daemon, error) {
	topo, err := loadTopology(cfg.topoPath)
	if err != nil {
		return nil, err
	}
	var policyOpt core.ManagerOption
	switch cfg.policy {
	case "minmax":
		policyOpt = core.WithPolicy(core.MinMaxOccupancy)
	case "first-feasible":
		policyOpt = core.WithPolicy(core.FirstFeasible)
	case "greedy-pack":
		policyOpt = core.WithPolicy(core.GreedyPack)
	default:
		return nil, fmt.Errorf("unknown policy %q", cfg.policy)
	}
	mgrOpts := []core.ManagerOption{policyOpt}
	batch := false
	switch cfg.admission {
	case "", "optimistic": // plan outside the lock, revalidate, commit
	case "batch": // optimistic + coalesce concurrent requests into batches
		batch = true
	case "locked":
		mgrOpts = append(mgrOpts, core.WithLockedAdmission())
	default:
		return nil, fmt.Errorf("unknown admission mode %q", cfg.admission)
	}

	d := &daemon{serveErr: make(chan error, 1), stopTick: make(chan struct{}), cfg: cfg, follow: cfg.follow}
	walOpts := []wal.Option{wal.WithSnapshotEvery(cfg.checkpointEvery)}
	if cfg.noSync {
		walOpts = append(walOpts, wal.WithNoSync())
	}
	switch cfg.role {
	case "", "primary":
		if cfg.follow != "" {
			return nil, errors.New("-follow requires -role standby")
		}
		if cfg.shards > 0 {
			if cfg.stateDir == "" {
				return nil, errors.New("-shards needs -state-dir (each pod keeps its own write-ahead log)")
			}
			if batch {
				return nil, errors.New("-shards is incompatible with -admission batch (the router already groups commits per pod)")
			}
			mode, merr := shard.ParseMode(cfg.shardMode)
			if merr != nil {
				return nil, merr
			}
			d.router, err = shard.Open(cfg.stateDir, topo, cfg.eps, cfg.shards, shard.Options{
				Mode:          mode,
				MgrOpts:       mgrOpts,
				NoSync:        cfg.noSync,
				SnapshotEvery: cfg.checkpointEvery,
			})
			if err != nil {
				return nil, err
			}
			d.api = httpapi.NewControllerServer(d.router)
			d.wireShards(d.router)
			break
		}
		if cfg.stateDir != "" {
			d.mgr, d.journal, err = wal.Recover(cfg.stateDir, topo, cfg.eps, mgrOpts, walOpts...)
			if err != nil {
				return nil, err
			}
		} else {
			if d.mgr, err = core.NewManager(topo, cfg.eps, mgrOpts...); err != nil {
				return nil, err
			}
		}
		d.api = httpapi.NewServer(d.mgr)
		if batch {
			d.api.SetBatcher(core.NewBatcher(d.mgr, 0))
		}
		if d.journal != nil {
			d.wireJournal(d.mgr, d.journal)
		}
	case "standby":
		if cfg.shards > 0 {
			return nil, errors.New("-shards requires -role primary (standbys follow one unsharded WAL)")
		}
		if cfg.stateDir == "" || cfg.follow == "" {
			return nil, errors.New("-role standby needs -state-dir (the mirror) and -follow (the primary URL)")
		}
		s, serr := replica.New(replica.Config{
			Dir:     cfg.stateDir,
			Topo:    topo,
			Eps:     cfg.eps,
			Fetch:   replica.ClientFetcher(httpapi.NewClient(cfg.follow, nil)),
			MgrOpts: mgrOpts,
			WALOpts: walOpts,
			NoSync:  cfg.noSync,
			// Stream resets build a fresh follower manager; re-point
			// read traffic at it (d.api is set before start()).
			OnReset: func(m *core.Manager) { d.api.SetManager(m) },
		})
		if serr != nil {
			return nil, serr
		}
		d.standby = s
		d.mgr = s.Manager()
		d.api = httpapi.NewServer(d.mgr)
		d.api.SetStandby(true)
		d.api.SetPromote(d.promote)
		d.api.SetReplication(func() *httpapi.ReplicationStatus {
			cur := s.Cursor()
			lag := s.Lag()
			return &httpapi.ReplicationStatus{
				Role: "standby", Epoch: s.Epoch(), Gen: cur.Gen,
				AppliedOff: cur.Off, DurableOff: cur.Off + lag.Bytes,
				LagBytes: lag.Bytes, LagRecords: lag.Records, Version: lag.Version,
			}
		})
	default:
		return nil, fmt.Errorf("unknown role %q (want primary or standby)", cfg.role)
	}
	d.server = &http.Server{
		Handler:           d.api.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	if d.listener, err = net.Listen("tcp", cfg.addr); err != nil {
		if d.journal != nil {
			d.journal.Close()
		}
		return nil, err
	}
	return d, nil
}

// wireJournal installs the seams a journaled primary serves: WAL
// status, the replication tail, fencing, and the status report's
// replication section. Called at boot and again at promotion.
func (d *daemon) wireJournal(mgr *core.Manager, j *wal.Journal) {
	d.api.SetWALStatus(func() httpapi.WALStatus {
		gs := j.GroupCommitStats()
		return httpapi.WALStatus{
			Gen:       j.Gen(),
			Appended:  j.Appended(),
			Batches:   gs.Batches,
			Records:   gs.Records,
			MaxBatch:  gs.MaxBatch,
			MeanBatch: gs.MeanBatch,
		}
	})
	d.api.SetWALTail(replica.TailHandler(j))
	d.api.SetFence(j.Fence)
	d.api.SetReplication(func() *httpapi.ReplicationStatus {
		cur := j.DurableCursor()
		return &httpapi.ReplicationStatus{
			Role: "primary", Epoch: j.Epoch(), Gen: cur.Gen,
			DurableOff: cur.Off, Version: mgr.Version(),
		}
	})
}

// wireShards installs the sharded control plane's status seams: the
// per-pod WAL counters merged into one WAL section, and the sharding
// section with the per-pod layout.
func (d *daemon) wireShards(r *shard.Router) {
	d.api.SetWALStatus(func() httpapi.WALStatus {
		var ws httpapi.WALStatus
		for i := 0; i < r.Shards(); i++ {
			j := r.PodJournal(i)
			gs := j.GroupCommitStats()
			ws.Appended += j.Appended()
			ws.Batches += gs.Batches
			ws.Records += gs.Records
			if gs.MaxBatch > ws.MaxBatch {
				ws.MaxBatch = gs.MaxBatch
			}
			if g := j.Gen(); g > ws.Gen {
				ws.Gen = g
			}
		}
		if ws.Batches > 0 {
			ws.MeanBatch = float64(ws.Records) / float64(ws.Batches)
		}
		return ws
	})
	d.api.SetSharding(func() *httpapi.ShardingStatus {
		ss := &httpapi.ShardingStatus{
			Mode:         r.Mode().String(),
			Shards:       r.Shards(),
			CrossPodJobs: r.CrossPodJobs(),
		}
		for _, st := range r.ShardStatuses() {
			ss.Pods = append(ss.Pods, httpapi.PodStatus{
				Shard:        st.Shard,
				Root:         st.Root,
				Jobs:         st.Jobs,
				FreeSlots:    st.FreeSlots,
				MaxOccupancy: st.MaxOccupancy,
			})
		}
		return ss
	})
}

// start begins serving and, when journaled, compacting the log in the
// background; a standby starts its follow loop instead.
func (d *daemon) start() {
	go func() { d.serveErr <- d.server.Serve(d.listener) }()
	if d.standby != nil {
		d.startFollow(d.standby)
		return
	}
	if d.router != nil {
		go d.shardCheckpointLoop(d.router)
		return
	}
	if d.journal != nil {
		go d.checkpointLoop(d.mgr, d.journal)
	}
}

// shardCheckpointLoop compacts each pod's log independently: a hot pod
// snapshots on its own cadence without stalling its siblings.
func (d *daemon) shardCheckpointLoop(r *shard.Router) {
	t := time.NewTicker(time.Second)
	defer t.Stop()
	for {
		select {
		case <-d.stopTick:
			return
		case <-t.C:
			for i := 0; i < r.Shards(); i++ {
				if r.PodJournal(i).NeedsCheckpoint() {
					if err := r.Pod(i).Checkpoint(); err != nil {
						log.Printf("svcd: checkpoint pod %d: %v", i, err)
					}
				}
			}
		}
	}
}

// startFollow launches (or relaunches) the standby follow loop. Callers
// hold roleMu except during single-threaded startup.
func (d *daemon) startFollow(s *replica.Standby) {
	ctx, cancel := context.WithCancel(context.Background())
	d.followCancel = cancel
	d.followDone = make(chan struct{})
	done := d.followDone
	go func() {
		defer close(done)
		if err := s.Run(ctx); err != nil && !errors.Is(err, context.Canceled) {
			log.Printf("svcd: follow loop: %v", err)
		}
	}()
}

// checkpointLoop snapshots the manager whenever the journal has
// accumulated enough records to make compaction worthwhile.
func (d *daemon) checkpointLoop(mgr *core.Manager, j *wal.Journal) {
	t := time.NewTicker(time.Second)
	defer t.Stop()
	for {
		select {
		case <-d.stopTick:
			return
		case <-t.C:
			if j.NeedsCheckpoint() {
				if err := mgr.Checkpoint(); err != nil {
					log.Printf("svcd: checkpoint: %v", err)
				}
			}
		}
	}
}

// promote serves POST /v1/promote on a standby: catch up to the
// primary's durable tail, promote the follower into a journaled
// primary, swap it behind the HTTP surface, and fence the old primary.
func (d *daemon) promote(ctx context.Context) (httpapi.PromoteResponse, error) {
	d.roleMu.Lock()
	defer d.roleMu.Unlock()
	s := d.standby
	if s == nil {
		return httpapi.PromoteResponse{}, errors.New("this node is no longer a standby")
	}
	// Pause the follow loop first: promotion serializes with sync rounds,
	// so a parked long poll would otherwise stall the catch-up below for
	// a full poll horizon.
	if d.followCancel != nil {
		d.followCancel()
		<-d.followDone
		d.followCancel = nil
	}
	// Drain whatever the primary can still serve before the lag check;
	// each round is one fetch, so a dead primary fails fast.
	for i := 0; i < 8; i++ {
		caught, err := s.SyncOnce(ctx, 0)
		if err != nil || caught {
			break
		}
	}
	prom, err := s.Promote(ctx)
	if err != nil {
		d.startFollow(s) // still a standby: keep tracking the primary
		return httpapi.PromoteResponse{}, err
	}
	d.standby = nil
	d.mgr = prom.Mgr
	d.journal = prom.Journal
	d.api.SetManager(prom.Mgr)
	d.wireJournal(prom.Mgr, prom.Journal)
	d.api.SetPromote(nil)
	d.api.SetStandby(false)
	go d.checkpointLoop(prom.Mgr, prom.Journal)
	if d.follow != "" {
		// Best effort: a dead primary can't ack the fence, and doesn't
		// need it — its journal seam vetoes stale commits if it returns.
		go func(url string, epoch uint64) {
			fctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
			defer cancel()
			if err := httpapi.NewClient(url, nil).Fence(fctx, epoch); err != nil {
				log.Printf("svcd: fence old primary: %v", err)
			}
		}(d.follow, prom.Epoch)
	}
	log.Printf("svcd: promoted to primary at epoch %d (gen %d)", prom.Epoch, prom.Journal.Gen())
	return httpapi.PromoteResponse{
		Epoch: prom.Epoch, LagRecords: prom.Lag.Records,
		LagBytes: prom.Lag.Bytes, Version: prom.Mgr.Version(),
	}, nil
}

// shutdown drains in-flight requests, then makes the final state durable:
// refuse new mutations, stop the listener, checkpoint, close the journal.
func (d *daemon) shutdown(ctx context.Context) error {
	d.api.SetDraining(true)
	err := d.server.Shutdown(ctx)
	close(d.stopTick)
	if serr := <-d.serveErr; serr != nil && !errors.Is(serr, http.ErrServerClosed) && err == nil {
		err = serr
	}
	d.roleMu.Lock()
	mgr, journal, standby := d.mgr, d.journal, d.standby
	cancel, done := d.followCancel, d.followDone
	d.roleMu.Unlock()
	if cancel != nil {
		cancel()
		<-done
	}
	if standby != nil {
		if cerr := standby.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	if d.router != nil {
		// Seal each pod: snapshot logs that grew since the last rotation,
		// then close the pod journals and the router's intent log.
		for i := 0; i < d.router.Shards(); i++ {
			if d.router.PodJournal(i).Appended() > 0 {
				if cerr := d.router.Pod(i).Checkpoint(); cerr != nil && !errors.Is(cerr, wal.ErrFenced) && err == nil {
					err = cerr
				}
			}
		}
		if cerr := d.router.Close(); cerr != nil && err == nil {
			err = cerr
		}
		return err
	}
	if journal != nil {
		// Skip the final checkpoint when the log has nothing new since
		// the last one (an empty rotation buys no recovery time) or the
		// journal is fenced (a deposed primary must not rotate).
		if journal.Appended() > 0 {
			if cerr := mgr.Checkpoint(); cerr != nil && !errors.Is(cerr, wal.ErrFenced) && err == nil {
				err = cerr
			}
		}
		mgr.SetJournal(nil)
		if cerr := journal.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	return err
}

func run(args []string) error {
	fs := flag.NewFlagSet("svcd", flag.ContinueOnError)
	var cfg config
	fs.StringVar(&cfg.addr, "addr", "127.0.0.1:8080", "listen address")
	fs.StringVar(&cfg.topoPath, "topo", "", "topology spec JSON (default: builtin paper topology)")
	fs.Float64Var(&cfg.eps, "eps", 0.05, "risk factor for the probabilistic guarantee")
	fs.StringVar(&cfg.policy, "policy", "minmax", "placement policy: minmax|first-feasible|greedy-pack")
	fs.StringVar(&cfg.stateDir, "state-dir", "", "directory for the write-ahead log and snapshots (empty: in-memory only)")
	fs.IntVar(&cfg.checkpointEvery, "checkpoint-every", 4096, "journal records between snapshots")
	fs.BoolVar(&cfg.noSync, "no-sync", false, "skip fsync on journal appends (faster, loses tail on power failure)")
	fs.StringVar(&cfg.admission, "admission", "optimistic", "admission pipeline: optimistic (plan outside the lock) | batch (optimistic + coalesced batch planning) | locked (serialized)")
	fs.StringVar(&cfg.role, "role", "primary", "primary serves writes; standby follows a primary's WAL and serves reads until promoted")
	fs.StringVar(&cfg.follow, "follow", "", "primary base URL a standby replicates from (e.g. http://10.0.0.1:8080)")
	fs.IntVar(&cfg.shards, "shards", 0, "shard the control plane into one ledger+WAL per aggregation subtree; must equal the topology's pod count (0: unsharded)")
	fs.StringVar(&cfg.shardMode, "shard-mode", "strict", "sharded admission mode: strict (serialized, bit-identical to unsharded) | fast (pod-parallel, no cross-pod placements)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	d, err := newDaemon(cfg)
	if err != nil {
		return err
	}
	durable := "in-memory"
	if cfg.stateDir != "" {
		durable = "journaled to " + cfg.stateDir
	}
	if cfg.role == "standby" {
		durable = "standby following " + cfg.follow + ", mirroring to " + cfg.stateDir
	}
	if d.router != nil {
		durable = fmt.Sprintf("%d pod shards (%s mode) journaled to %s", d.router.Shards(), d.router.Mode(), cfg.stateDir)
		topo := d.router.Topology()
		log.Printf("svcd: serving %d machines (%d slots, %d jobs recovered) at eps=%v on %s, %s",
			len(topo.Machines()), topo.TotalSlots(), d.router.Running(), cfg.eps, d.listener.Addr(), durable)
	} else {
		log.Printf("svcd: serving %d machines (%d slots, %d jobs recovered) at eps=%v on %s, %s",
			len(d.mgr.Topology().Machines()), d.mgr.Topology().TotalSlots(),
			d.mgr.Running(), cfg.eps, d.listener.Addr(), durable)
	}
	d.start()

	// Serve until interrupted, then drain connections and seal the journal.
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-d.serveErr:
		return err
	case sig := <-stop:
		log.Printf("svcd: %v, draining", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		return d.shutdown(ctx)
	}
}

func loadTopology(path string) (*topology.Topology, error) {
	if path == "" {
		return topology.NewThreeTier(topology.PaperConfig())
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	spec, err := topology.ReadSpec(f)
	if err != nil {
		return nil, err
	}
	return topology.NewFromSpec(spec)
}
