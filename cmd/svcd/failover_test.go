package main

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/httpapi"
)

// startTestStandby builds and starts an in-process standby following the
// given primary.
func startTestStandby(t *testing.T, primary *daemon, stateDir string) *daemon {
	t.Helper()
	d, err := newDaemon(config{
		addr:            "127.0.0.1:0",
		eps:             0.05,
		policy:          "minmax",
		stateDir:        stateDir,
		checkpointEvery: 4096,
		noSync:          true,
		role:            "standby",
		follow:          "http://" + primary.listener.Addr().String(),
	})
	if err != nil {
		t.Fatalf("newDaemon(standby): %v", err)
	}
	d.start()
	return d
}

func waitForCatchUp(t *testing.T, c *httpapi.Client, wantVersion uint64) {
	t.Helper()
	ctx := context.Background()
	deadline := time.Now().Add(10 * time.Second)
	for {
		st, err := c.Status(ctx)
		if err == nil && st.Replication != nil &&
			st.Replication.LagBytes == 0 && st.Replication.Version >= wantVersion {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("standby never caught up (last status: %+v)", st.Replication)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestStandbyFollowsAndRefusesWrites: a standby serves reads that track
// the primary and refuses writes with a retryable 503.
func TestStandbyFollowsAndRefusesWrites(t *testing.T) {
	ctx := context.Background()
	p := startTestDaemon(t, t.TempDir())
	defer func() {
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		p.shutdown(sctx)
	}()
	s := startTestStandby(t, p, t.TempDir())
	defer func() {
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.shutdown(sctx)
	}()

	pc := testClient(p)
	if _, err := pc.Allocate(ctx, httpapi.AllocationRequest{N: 3, Mu: 80, Sigma: 20}); err != nil {
		t.Fatal(err)
	}
	pst, err := pc.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if pst.Replication == nil || pst.Replication.Role != "primary" {
		t.Fatalf("primary reports no replication role: %+v", pst.Replication)
	}

	sc := httpapi.NewClient("http://"+s.listener.Addr().String(), nil, httpapi.WithRetries(0))
	waitForCatchUp(t, sc, pst.Replication.Version)
	sst, err := sc.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if sst.Replication == nil || sst.Replication.Role != "standby" {
		t.Fatalf("standby reports role %+v", sst.Replication)
	}
	if sst.RunningJobs != pst.RunningJobs || sst.FreeSlots != pst.FreeSlots {
		t.Fatalf("standby reads diverge: %+v vs primary %+v", sst, pst)
	}

	// Writes on the standby are refused while it is not the primary.
	_, err = sc.Allocate(ctx, httpapi.AllocationRequest{N: 1, Mu: 10})
	if apiErr, ok := err.(*httpapi.APIError); !ok || apiErr.StatusCode != 503 {
		t.Fatalf("standby write: %v, want 503", err)
	}
}

// TestLoadedFailoverLosesNoAckedAdmission is the loaded end-to-end
// failover: keyed writers run against a failover-aware client while the
// primary drains, the standby promotes at the durable tail, and the old
// primary is killed abruptly. Every allocation a client saw acked must
// exist on the new primary exactly once — none lost, none doubled.
func TestLoadedFailoverLosesNoAckedAdmission(t *testing.T) {
	ctx := context.Background()
	p := startTestDaemon(t, t.TempDir())
	s := startTestStandby(t, p, t.TempDir())
	defer func() {
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.shutdown(sctx)
	}()

	primaryURL := "http://" + p.listener.Addr().String()
	standbyURL := "http://" + s.listener.Addr().String()
	newFailoverClient := func() *httpapi.Client {
		return httpapi.NewClient(primaryURL, nil,
			httpapi.WithEndpoints(standbyURL),
			httpapi.WithRetries(30),
			httpapi.WithBackoff(5*time.Millisecond, 50*time.Millisecond))
	}

	baseline, err := testClient(p).Status(ctx)
	if err != nil {
		t.Fatal(err)
	}

	const writers, perWriter = 4, 8
	var mu sync.Mutex
	acked := make(map[string]int64) // idempotency key -> acked job ID
	var wg sync.WaitGroup
	half := make(chan struct{}) // closed when enough acks exist to fail over
	var once sync.Once
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := newFailoverClient()
			for k := 0; k < perWriter; k++ {
				key := fmt.Sprintf("fo-%d-%d", w, k)
				resp, err := c.Allocate(ctx, httpapi.AllocationRequest{N: 1, Mu: 5, Sigma: 1},
					httpapi.WithIdempotencyKey(key))
				if err != nil {
					t.Errorf("writer %d allocate %s: %v", w, key, err)
					return
				}
				mu.Lock()
				acked[key] = resp.ID
				n := len(acked)
				mu.Unlock()
				if n >= writers*perWriter/2 {
					once.Do(func() { close(half) })
				}
			}
		}(w)
	}

	// Failover mid-load: drain the primary (in-flight writes finish and
	// ack; new ones bounce with a retryable 503), promote the standby at
	// the primary's durable tail, then kill the primary abruptly.
	<-half
	p.api.SetDraining(true)
	prom, err := httpapi.NewClient(standbyURL, nil).Promote(ctx)
	if err != nil {
		t.Fatalf("promote: %v", err)
	}
	if prom.LagBytes != 0 || prom.LagRecords != 0 {
		t.Fatalf("promotion left replay lag: %+v", prom)
	}
	if prom.Epoch < 2 {
		t.Fatalf("promotion epoch %d, want >= 2", prom.Epoch)
	}
	p.server.Close() // abrupt kill: no drain, no checkpoint, no journal close
	close(p.stopTick)

	wg.Wait()
	if t.Failed() {
		return
	}

	// Every acked admission must exist on the new primary exactly once.
	// Re-driving each key must replay the original ID (not re-allocate),
	// and releasing each acked job must succeed; afterwards the
	// datacenter must be back to its baseline exactly.
	nc := httpapi.NewClient(standbyURL, nil, httpapi.WithRetries(2),
		httpapi.WithBackoff(5*time.Millisecond, 50*time.Millisecond))
	st, err := nc.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.RunningJobs != baseline.RunningJobs+len(acked) {
		t.Fatalf("new primary runs %d jobs, want %d acked + %d baseline",
			st.RunningJobs, len(acked), baseline.RunningJobs)
	}
	for key, id := range acked {
		replay, err := nc.Allocate(ctx, httpapi.AllocationRequest{N: 1, Mu: 5, Sigma: 1},
			httpapi.WithIdempotencyKey(key))
		if err != nil {
			t.Fatalf("replaying key %s: %v", key, err)
		}
		if replay.ID != id {
			t.Fatalf("key %s replayed job %d, want acked %d", key, replay.ID, id)
		}
	}
	for key, id := range acked {
		if err := nc.Release(ctx, id); err != nil {
			t.Fatalf("acked admission %s (job %d) lost in failover: %v", key, id, err)
		}
	}
	final, err := nc.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if final.RunningJobs != baseline.RunningJobs || final.FreeSlots != baseline.FreeSlots {
		t.Fatalf("after releasing every acked job: %+v, want baseline %+v (double allocation?)",
			final, baseline)
	}
}

// TestShutdownSkipsEmptyCheckpoint: a drain with nothing new in the log
// must not rotate the generation — an empty checkpoint buys nothing and
// doubles the crash surface around the rename.
func TestShutdownSkipsEmptyCheckpoint(t *testing.T) {
	stateDir := t.TempDir()
	d1 := startTestDaemon(t, stateDir)
	gen := d1.journal.Gen()
	sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := d1.shutdown(sctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	d2 := startTestDaemon(t, stateDir)
	defer func() {
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		d2.shutdown(sctx)
	}()
	if d2.journal.Gen() != gen {
		t.Fatalf("empty shutdown rotated gen %d -> %d", gen, d2.journal.Gen())
	}
}
