package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-policy", "psychic", "-addr", "127.0.0.1:0"}); err == nil {
		t.Error("unknown policy accepted")
	}
	if err := run([]string{"-topo", "/does/not/exist.json", "-addr", "127.0.0.1:0"}); err == nil {
		t.Error("missing topology file accepted")
	}
	if err := run([]string{"-eps", "2", "-addr", "127.0.0.1:0"}); err == nil {
		t.Error("invalid eps accepted")
	}
	if err := run([]string{"-not-a-flag"}); err == nil {
		t.Error("unknown flag accepted")
	}
}

func TestLoadTopologyFromFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "topo.json")
	spec := `{"children": [{"upCapMbps": 100, "slots": 2}, {"upCapMbps": 100, "slots": 2}]}`
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}
	topo, err := loadTopology(path)
	if err != nil {
		t.Fatalf("loadTopology: %v", err)
	}
	if topo.TotalSlots() != 4 {
		t.Errorf("slots = %d, want 4", topo.TotalSlots())
	}
	if _, err := loadTopology(""); err != nil {
		t.Errorf("builtin topology: %v", err)
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{"), 0o644); err != nil {
		t.Fatalf("write: %v", err)
	}
	if _, err := loadTopology(bad); err == nil {
		t.Error("malformed topology accepted")
	}
}
