package main

import (
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/httpapi"
)

// shardedTopoPath writes a two-pod topology: each pod is one aggregation
// subtree with two 2-slot machines (4 slots per pod, 8 total).
func shardedTopoPath(t *testing.T) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "pods.json")
	spec := `{"children": [
		{"upCapMbps": 400, "children": [{"upCapMbps": 200, "slots": 2}, {"upCapMbps": 200, "slots": 2}]},
		{"upCapMbps": 400, "children": [{"upCapMbps": 200, "slots": 2}, {"upCapMbps": 200, "slots": 2}]}
	]}`
	if err := os.WriteFile(path, []byte(spec), 0o644); err != nil {
		t.Fatalf("write topo: %v", err)
	}
	return path
}

func startShardedDaemon(t *testing.T, stateDir, topoPath string) *daemon {
	t.Helper()
	d, err := newDaemon(config{
		addr:            "127.0.0.1:0",
		topoPath:        topoPath,
		eps:             0.05,
		policy:          "minmax",
		stateDir:        stateDir,
		checkpointEvery: 4096,
		noSync:          true,
		shards:          2,
		shardMode:       "strict",
	})
	if err != nil {
		t.Fatalf("newDaemon: %v", err)
	}
	d.start()
	return d
}

// TestShardedDaemonFlagValidation rejects the flag combinations the
// sharded control plane cannot serve.
func TestShardedDaemonFlagValidation(t *testing.T) {
	base := config{addr: "127.0.0.1:0", eps: 0.05, policy: "minmax"}

	cfg := base
	cfg.shards = 5
	if _, err := newDaemon(cfg); err == nil {
		t.Error("-shards without -state-dir accepted")
	}
	cfg.stateDir = t.TempDir()
	cfg.shardMode = "psychic"
	if _, err := newDaemon(cfg); err == nil {
		t.Error("unknown shard mode accepted")
	}
	cfg.shardMode = "strict"
	cfg.admission = "batch"
	if _, err := newDaemon(cfg); err == nil {
		t.Error("-shards with -admission batch accepted")
	}
	cfg.admission = ""
	cfg.role = "standby"
	cfg.follow = "http://127.0.0.1:1"
	if _, err := newDaemon(cfg); err == nil {
		t.Error("-shards with -role standby accepted")
	}
	cfg.role = ""
	cfg.follow = ""
	cfg.shards = 3 // builtin paper topology has 5 pods
	if _, err := newDaemon(cfg); err == nil {
		t.Error("shard count not matching the pod count accepted")
	}
}

// TestShardedDaemonServesAndRecovers is the sharded end-to-end check:
// a daemon with -shards admits pod-local and cross-pod jobs over HTTP,
// reports the sharding status section, and recovers every admission —
// including the cross-pod one and its idempotency binding — from the
// per-pod WALs plus the intent log after an abrupt crash.
func TestShardedDaemonServesAndRecovers(t *testing.T) {
	stateDir := t.TempDir()
	topoPath := shardedTopoPath(t)
	ctx := context.Background()

	d1 := startShardedDaemon(t, stateDir, topoPath)
	c1 := testClient(d1)

	// Pod-local job (fits one pod's 4 slots).
	if _, err := c1.Allocate(ctx, httpapi.AllocationRequest{N: 3, Mu: 20}); err != nil {
		t.Fatalf("pod-local allocate: %v", err)
	}
	// Cross-pod job: 5 VMs cannot fit in the 1 + 4 slots any single pod
	// still has, so the placement must span both pods.
	crossReq := httpapi.AllocationRequest{N: 5, Mu: 20}
	cross, err := c1.Allocate(ctx, crossReq, httpapi.WithIdempotencyKey("cross-1"))
	if err != nil {
		t.Fatalf("cross-pod allocate: %v", err)
	}

	before, err := c1.Status(ctx)
	if err != nil {
		t.Fatalf("status: %v", err)
	}
	if before.RunningJobs != 2 || before.FreeSlots != 0 {
		t.Fatalf("status = %d jobs / %d free, want 2 / 0", before.RunningJobs, before.FreeSlots)
	}
	sh := before.Sharding
	if sh == nil {
		t.Fatal("status has no sharding section")
	}
	if sh.Mode != "strict" || sh.Shards != 2 || sh.CrossPodJobs != 1 || len(sh.Pods) != 2 {
		t.Fatalf("sharding section = %+v", sh)
	}
	if before.WAL == nil || before.WAL.Appended == 0 {
		t.Fatalf("wal section = %+v, want merged pod appends", before.WAL)
	}
	links, err := c1.Links(ctx, 0)
	if err != nil {
		t.Fatalf("links: %v", err)
	}
	if len(links) != 6 {
		t.Fatalf("links = %d, want 6 (2 pod uplinks + 4 machine links)", len(links))
	}

	// Crash without drain or checkpoint; recovery must rebuild from the
	// pod WALs and the router's intent log.
	d1.server.Close()
	close(d1.stopTick)

	d2 := startShardedDaemon(t, stateDir, topoPath)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := d2.shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}()
	c2 := testClient(d2)
	after, err := c2.Status(ctx)
	if err != nil {
		t.Fatalf("status after restart: %v", err)
	}
	if after.RunningJobs != 2 || after.FreeSlots != 0 {
		t.Fatalf("restarted status = %d jobs / %d free, want 2 / 0", after.RunningJobs, after.FreeSlots)
	}
	if after.Sharding == nil || after.Sharding.CrossPodJobs != 1 {
		t.Fatalf("restarted sharding section = %+v", after.Sharding)
	}

	// The keyed cross-pod allocate must replay, not re-reserve.
	replay, err := c2.Allocate(ctx, crossReq, httpapi.WithIdempotencyKey("cross-1"))
	if err != nil {
		t.Fatalf("replayed allocate: %v", err)
	}
	if replay.ID != cross.ID {
		t.Errorf("replay returned job %d, want %d", replay.ID, cross.ID)
	}

	// Releasing the cross-pod job frees both pods' sub-frames.
	if err := c2.Release(ctx, cross.ID); err != nil {
		t.Fatalf("release: %v", err)
	}
	final, err := c2.Status(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if final.RunningJobs != 1 || final.FreeSlots != 5 || final.Sharding.CrossPodJobs != 0 {
		t.Fatalf("post-release status = %d jobs / %d free / %d cross, want 1 / 5 / 0",
			final.RunningJobs, final.FreeSlots, final.Sharding.CrossPodJobs)
	}
}
